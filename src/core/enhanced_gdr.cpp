// The proposed GDR-aware design (Section III): hybrid protocol selection
// that keeps every configuration truly one-sided.
//
//   intra-node   small  -> loopback RDMA with GDR legs (Fig 2)
//   intra-node   large  -> one CUDA IPC copy, or one cudaMemcpy straight
//                          into the peer's host heap (shmem_ptr, Fig 3)
//   inter-node   small  -> Direct GDR RDMA (Fig 4, solid)
//   inter-node   large  -> pipeline-GDR-write for device sources (Fig 4,
//                          dotted); per-node proxy for device-source gets
//                          and inter-socket device targets (Fig 5)
//
// Thresholds are Tuning runtime parameters, shrunk when the HCA and GPU sit
// on different sockets (Table III).
#include "core/protocol_selector.hpp"
#include "core/proxy.hpp"
#include "core/transport_util.hpp"
#include "core/transports.hpp"

namespace gdrshmem::core {

// ---------------------------------------------------------------------------
// dispatch
//
// Path selection lives in core::ProtocolSelector (shared with the
// device-initiated backends); this transport only executes the choice.

void EnhancedGdrTransport::note_gdr_fallback(const RmaOp& op) {
  if ((op.local_is_device && !rt_.gdr_available(issuer_)) ||
      (op.remote_domain == Domain::kGpu && !rt_.gdr_available(op.target_pe))) {
    rt_.faults().on_event(sim::FaultEvent::kGdrFallback, issuer_);
  }
}

void EnhancedGdrTransport::put(Ctx& ctx, const RmaOp& op) {
  issuer_ = ctx.my_pe();
  if (rt_.faults_enabled()) note_gdr_fallback(op);
  switch (rt_.selector().select_put(op, issuer_)) {
    case PathChoice::kHostShm:
      ctx.count_protocol(Protocol::kHostShm, op.bytes);
      return detail::host_shm_copy(ctx, op.remote, op.local, op.bytes,
                                   op.target_pe);
    case PathChoice::kLoopbackGdr:
      return direct_put(ctx, op, Protocol::kLoopbackGdr);
    case PathChoice::kIpcCopy:
      // One IPC copy into the mapped destination (H-D / D-D large put).
      return detail::peer_cuda_copy(ctx, op.remote, op.local, op.bytes,
                                    op.target_pe, Protocol::kIpcCopy, true);
    case PathChoice::kShmemPtrCopy:
      // D-H large put: cudaMemcpy D->H straight into the peer's host heap —
      // the shmem_ptr design of Fig 3. One copy, no target involvement.
      return detail::peer_cuda_copy(ctx, op.remote, op.local, op.bytes,
                                    op.target_pe, Protocol::kShmemPtrCopy,
                                    false);
    case PathChoice::kDirectRdma:
      return direct_put(ctx, op, Protocol::kDirectRdma);
    case PathChoice::kDirectGdr:
      return direct_put(ctx, op, Protocol::kDirectGdr);
    case PathChoice::kPipelineGdrWrite:
      return pipeline_gdr_write(ctx, op);
    case PathChoice::kStagedProxyPut: {
      // Both ends bottlenecked (or the target's P2P was revoked): stage the
      // whole message to host locally, let the target-side proxy do the last
      // hop with an IPC copy.
      std::byte* b = ctx.bounce(op.bytes);
      rt_.cuda().memcpy_sync(ctx.proc(), b, op.local, op.bytes);
      return proxy_put(ctx, op, b);
    }
    case PathChoice::kProxyPut:
      return proxy_put(ctx, op, op.local);
    default:
      throw ShmemError("enhanced-gdr: unreachable put path");
  }
}

void EnhancedGdrTransport::get(Ctx& ctx, const RmaOp& op) {
  issuer_ = ctx.my_pe();
  if (rt_.faults_enabled()) note_gdr_fallback(op);
  switch (rt_.selector().select_get(op, issuer_)) {
    case PathChoice::kHostShm:
      ctx.count_protocol(Protocol::kHostShm, op.bytes);
      return detail::host_shm_copy(ctx, op.local, op.remote, op.bytes, -1);
    case PathChoice::kLoopbackGdr:
      return direct_get(ctx, op, Protocol::kLoopbackGdr);
    case PathChoice::kIpcCopy:
      // H-D / D-D large get: one IPC copy out of the mapped source. For H-D
      // this single D->H copy is the 40% win over the baseline's staged path.
      return detail::peer_cuda_copy(ctx, op.local, op.remote, op.bytes,
                                    op.target_pe, Protocol::kIpcCopy, true);
    case PathChoice::kShmemPtrCopy:
      // D-H large get: H->D copy from the peer's host heap (shmem_ptr).
      return detail::peer_cuda_copy(ctx, op.local, op.remote, op.bytes,
                                    op.target_pe, Protocol::kShmemPtrCopy,
                                    false);
    case PathChoice::kDirectRdma:
      return direct_get(ctx, op, Protocol::kDirectRdma);
    case PathChoice::kDirectGdr:
      return direct_get(ctx, op, Protocol::kDirectGdr);
    case PathChoice::kProxyGet:
      return proxy_get(ctx, op);
    case PathChoice::kHostStagedGet:
      return host_staged_get(ctx, op);
    default:
      throw ShmemError("enhanced-gdr: unreachable get path");
  }
}

void EnhancedGdrTransport::handle_ctrl(Ctx&, CtrlMsg&, sim::Process&) {
  // The whole point of the design: no target-PE work, ever.
  throw ShmemError("enhanced-gdr transport sends no PE-level control messages");
}

// ---------------------------------------------------------------------------
// inter-node protocols

void EnhancedGdrTransport::direct_put(Ctx& ctx, const RmaOp& op, Protocol proto) {
  detail::rdma_put(ctx, op, proto);
}

void EnhancedGdrTransport::direct_get(Ctx& ctx, const RmaOp& op, Protocol proto) {
  detail::rdma_get(ctx, op, proto);
}

void EnhancedGdrTransport::pipeline_gdr_write(Ctx& ctx, const RmaOp& op) {
  // Device source, large put. Avoid the P2P *read* bottleneck by IPC-copying
  // D->H into registered host staging, then RDMA (GDR-)writing each chunk.
  // (GDR-poor targets never reach here: the selector diverts them to
  // kStagedProxyPut or throws.)
  ctx.count_protocol(Protocol::kPipelineGdrWrite, op.bytes);
  const int me = ctx.my_pe();
  const bool faulty = rt_.faults_enabled();
  const std::size_t chunk = rt_.tuning().pipeline_chunk;
  std::byte* bounce = ctx.bounce(2 * chunk);
  sim::CompletionPtr slot_comp[2];
  std::function<sim::CompletionPtr()> slot_repost[2];
  auto* local_bytes = static_cast<const std::byte*>(op.local);
  auto* remote_bytes = static_cast<std::byte*>(op.remote);
  for (std::size_t off = 0; off < op.bytes; off += chunk) {
    std::size_t c = std::min(chunk, op.bytes - off);
    std::size_t s = (off / chunk) % 2;
    if (slot_comp[s]) {
      // The staging slot is about to be overwritten: its previous chunk must
      // be remotely complete first. Under a fault plan that means replaying
      // error completions *now*, while the slot still holds the chunk.
      if (faulty) {
        slot_comp[s] =
            ctx.await_reliable(ctx.proc(), std::move(slot_comp[s]), slot_repost[s]);
      } else {
        slot_comp[s]->wait(ctx.proc());
      }
    }
    rt_.cuda().memcpy_sync(ctx.proc(), bounce + s * chunk, local_bytes + off, c);
    auto post = [this, &ctx, me, bounce, s, chunk, target = op.target_pe,
                 remote_bytes, off, c] {
      return rt_.ib().rdma_write(ctx.proc(), me, bounce + s * chunk, target,
                                    remote_bytes + off, c);
    };
    auto comp = post();
    slot_comp[s] = comp;
    if (faulty) {
      slot_repost[s] = std::move(post);
    } else {
      ctx.track(std::move(comp));
    }
  }
  if (faulty) {
    // Drain both slots reliably before returning: once we return, the bounce
    // buffer may be reused and the repost closures would replay stale bytes.
    // A legal strengthening of the put's completion semantics.
    for (std::size_t s = 0; s < 2; ++s) {
      if (slot_comp[s]) {
        ctx.track(ctx.await_reliable(ctx.proc(), std::move(slot_comp[s]),
                                     slot_repost[s]));
      }
    }
  }
  // Paper semantics: the put returns once the last IPC cudaMemcpy completes
  // and the RDMA is posted — the source buffer is already copied out.
}

void EnhancedGdrTransport::host_staged_get(Ctx& ctx, const RmaOp& op) {
  // RDMA-read chunks into host staging, then H->D copy them locally —
  // avoids an inter-socket GDR write into our own GPU.
  ctx.count_protocol(Protocol::kHostStagedGet, op.bytes);
  const int me = ctx.my_pe();
  const std::size_t chunk = rt_.tuning().pipeline_chunk;
  std::byte* bounce = ctx.bounce(2 * chunk);
  auto* local_bytes = static_cast<std::byte*>(op.local);
  auto* remote_bytes = static_cast<const std::byte*>(op.remote);
  std::shared_ptr<cudart::CudaEvent> h2d[2];
  for (std::size_t off = 0; off < op.bytes; off += chunk) {
    std::size_t c = std::min(chunk, op.bytes - off);
    std::size_t s = (off / chunk) % 2;
    if (h2d[s]) h2d[s]->synchronize(ctx.proc());  // staging slot reusable
    auto post = [this, &ctx, me, bounce, s, chunk, target = op.target_pe,
                 remote_bytes, off, c] {
      return rt_.ib().rdma_read(ctx.proc(), me, bounce + s * chunk, target,
                                   remote_bytes + off, c);
    };
    if (rt_.faults_enabled()) {
      // Reads are idempotent into the staging slot: replay in place.
      ctx.await_reliable(ctx.proc(), post(), post);
    } else {
      post()->wait(ctx.proc());
    }
    h2d[s] = rt_.cuda().memcpy_async(local_bytes + off, bounce + s * chunk, c,
                                     ctx.stream());
  }
  for (auto& ev : h2d) {
    if (ev) ev->synchronize(ctx.proc());
  }
}

void EnhancedGdrTransport::proxy_put(Ctx& ctx, const RmaOp& op,
                                     const void* host_src) {
  ctx.count_protocol(Protocol::kProxyPut, op.bytes);
  if (rt_.faults_enabled()) {
    // Under a fault plan the proxy may crash mid-transfer. Each attempt uses
    // fresh transfer state (so a restarted proxy never consumes a stale
    // window notification into the new transfer) and a per-stage deadline;
    // a timed-out attempt is reissued from scratch, up to the budget. The
    // op becomes effectively blocking — a legal strengthening of nbi.
    int reissues = 0;
    while (!attempt_proxy_put(ctx, op, host_src)) {
      if (++reissues > rt_.tuning().proxy_max_reissues) {
        throw ShmemError("proxy put: reissue budget exhausted");
      }
      rt_.faults().on_event(sim::FaultEvent::kProxyReissue, ctx.my_pe());
    }
    return;
  }
  const int me = ctx.my_pe();
  Runtime& rt = rt_;
  ProxyDaemon& proxy = rt_.proxy(rt_.cluster().placement(op.target_pe).node);

  auto st = std::make_shared<ProxyPutState>();
  st->requester = me;
  CtrlMsg req;
  req.kind = CtrlMsg::Kind::kProxyPutReq;
  req.from = me;
  req.remote = op.remote;
  req.bytes = op.bytes;
  req.state = st;
  rt_.ib().post_send(ctx.proc(), me, proxy.endpoint(), 32,
                        [&proxy, req] { proxy.mailbox().post(req); });
  ctx.wait_for([&] { return st->cts.done(); });

  auto* src_bytes = static_cast<const std::byte*>(host_src);
  const std::size_t window = st->window;
  for (std::size_t off = 0; off < op.bytes; off += window) {
    std::size_t w = std::min(window, op.bytes - off);
    if (off > 0) {
      // Wait until the proxy drained the previous window out of staging.
      std::uint64_t need = off / window;
      ctx.wait_for([&] { return st->windows_done >= need; });
    }
    auto data = rt_.ib().rdma_write(ctx.proc(), me, src_bytes + off,
                                       proxy.endpoint(), st->staging, w);
    if (rt_.ib().in_order_delivery()) {
      ctx.track(std::move(data));
    } else {
      // Relaxed ordering (srd): the fin below must not overtake the staging
      // write — the proxy drains staging on fin receipt — so wait for the
      // window's data before announcing it.
      data->wait(ctx.proc());
    }
    CtrlMsg fin;
    fin.kind = CtrlMsg::Kind::kProxyPutFin;
    fin.from = me;
    fin.remote = op.remote;
    fin.bytes = w;
    fin.offset = off;
    fin.state = st;
    rt_.ib().post_send(ctx.proc(), me, proxy.endpoint(), 0,
                          [&proxy, fin] { proxy.mailbox().post(fin); });
  }
  (void)rt;
  ctx.track(st->done);
  if (op.blocking) ctx.wait_for([&] { return st->done->done(); });
}

bool EnhancedGdrTransport::attempt_proxy_put(Ctx& ctx, const RmaOp& op,
                                             const void* host_src) {
  const int me = ctx.my_pe();
  ProxyDaemon& proxy = rt_.proxy(rt_.cluster().placement(op.target_pe).node);
  const sim::Duration timeout =
      sim::Duration::us(rt_.tuning().proxy_timeout_us);

  auto st = std::make_shared<ProxyPutState>();
  st->requester = me;
  CtrlMsg req;
  req.kind = CtrlMsg::Kind::kProxyPutReq;
  req.from = me;
  req.remote = op.remote;
  req.bytes = op.bytes;
  req.state = st;
  rt_.ib().post_send(ctx.proc(), me, proxy.endpoint(), 32,
                        [&proxy, req] { proxy.mailbox().post(req); });
  if (!ctx.wait_for_deadline([&] { return st->cts.done(); },
                             ctx.now() + timeout)) {
    return false;
  }

  auto* src_bytes = static_cast<const std::byte*>(host_src);
  const std::size_t window = st->window;
  for (std::size_t off = 0; off < op.bytes; off += window) {
    std::size_t w = std::min(window, op.bytes - off);
    if (off > 0) {
      std::uint64_t need = off / window;
      if (!ctx.wait_for_deadline([&] { return st->windows_done >= need; },
                                 ctx.now() + timeout)) {
        return false;
      }
    }
    // The window's bytes must be in proxy staging before the notification is
    // sent: a tier-2 replay of the data write could otherwise land *after*
    // the proxy's H->D copy drained the window. host_src stays valid across
    // replays (user buffer or whole-message bounce).
    auto post = [this, &ctx, me, src_bytes, off, &proxy, st, w] {
      return rt_.ib().rdma_write(ctx.proc(), me, src_bytes + off,
                                    proxy.endpoint(), st->staging, w);
    };
    ctx.await_reliable(ctx.proc(), post(), post);
    CtrlMsg fin;
    fin.kind = CtrlMsg::Kind::kProxyPutFin;
    fin.from = me;
    fin.remote = op.remote;
    fin.bytes = w;
    fin.offset = off;
    fin.state = st;
    rt_.ib().post_send(ctx.proc(), me, proxy.endpoint(), 0,
                          [&proxy, fin] { proxy.mailbox().post(fin); });
  }
  return ctx.wait_for_deadline([&] { return st->done->done(); },
                               ctx.now() + timeout);
}

bool EnhancedGdrTransport::attempt_proxy_get(Ctx& ctx, const RmaOp& op) {
  const int me = ctx.my_pe();
  ProxyDaemon& proxy = rt_.proxy(rt_.cluster().placement(op.target_pe).node);
  rt_.verbs().reg_cache().get_or_register(ctx.proc(), me, op.local, op.bytes);

  auto st = std::make_shared<ProxyGetState>();
  st->requester = me;
  CtrlMsg req;
  req.kind = CtrlMsg::Kind::kProxyGet;
  req.from = me;
  req.local = op.local;
  req.remote = op.remote;
  req.bytes = op.bytes;
  req.state = st;
  rt_.ib().post_send(ctx.proc(), me, proxy.endpoint(), 32,
                        [&proxy, req] { proxy.mailbox().post(req); });
  // One stage: the proxy streams straight into our destination buffer and
  // fires done. A replayed attempt rewrites the same bytes — idempotent.
  return ctx.wait_for_deadline(
      [&] { return st->done->done(); },
      ctx.now() + sim::Duration::us(rt_.tuning().proxy_timeout_us));
}

void EnhancedGdrTransport::proxy_get(Ctx& ctx, const RmaOp& op) {
  ctx.count_protocol(Protocol::kProxyGet, op.bytes);
  if (rt_.faults_enabled()) {
    int reissues = 0;
    while (!attempt_proxy_get(ctx, op)) {
      if (++reissues > rt_.tuning().proxy_max_reissues) {
        throw ShmemError("proxy get: reissue budget exhausted");
      }
      rt_.faults().on_event(sim::FaultEvent::kProxyReissue, ctx.my_pe());
    }
    return;
  }
  const int me = ctx.my_pe();
  ProxyDaemon& proxy = rt_.proxy(rt_.cluster().placement(op.target_pe).node);
  // The proxy RDMA-writes straight into our destination buffer: it must be
  // registered under our endpoint (registration cache softens the cost).
  rt_.verbs().reg_cache().get_or_register(ctx.proc(), me, op.local, op.bytes);

  auto st = std::make_shared<ProxyGetState>();
  st->requester = me;
  CtrlMsg req;
  req.kind = CtrlMsg::Kind::kProxyGet;
  req.from = me;
  req.local = op.local;    // our destination buffer
  req.remote = op.remote;  // device range on the proxy's node
  req.bytes = op.bytes;
  req.state = st;
  rt_.ib().post_send(ctx.proc(), me, proxy.endpoint(), 32,
                        [&proxy, req] { proxy.mailbox().post(req); });
  if (op.blocking) {
    ctx.wait_for([&] { return st->done->done(); });
  } else {
    ctx.track(st->done);
  }
}

}  // namespace gdrshmem::core
