// Central metrics registry: named monotonic counters, gauges (value + peak),
// and log2-binned histograms. One instance lives on the Runtime and is
// populated from operation accounting (per-protocol x per-op-kind latency
// and message-size histograms), the proxy daemons (queue depth, staging
// occupancy), the fault injector (retransmits, replays, crashes), and — at
// snapshot time — the registration cache, verbs layer, and symmetric heaps.
//
// Everything here is pure bookkeeping on the wall-clock side: recording
// never touches the simulation engine, so metrics cannot perturb virtual
// time or event order.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <map>
#include <string>

namespace gdrshmem::core {

class Counter {
 public:
  void add(std::uint64_t delta = 1) { value_ += delta; }
  /// Snapshot assignment for counters maintained elsewhere and mirrored into
  /// the registry at report time.
  void set(std::uint64_t v) { value_ = v; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(std::uint64_t v) {
    value_ = v;
    max_ = std::max(max_, v);
  }
  std::uint64_t value() const { return value_; }
  std::uint64_t max() const { return max_; }

 private:
  std::uint64_t value_ = 0;
  std::uint64_t max_ = 0;
};

/// Log2-binned histogram: bin 0 holds zeros, bin i (i >= 1) holds values in
/// [2^(i-1), 2^i). 64-bit range, so 65 bins cover everything.
class Histogram {
 public:
  static constexpr int kBins = 65;

  void record(std::uint64_t v) {
    ++count_;
    sum_ += v;
    min_ = count_ == 1 ? v : std::min(min_, v);
    max_ = std::max(max_, v);
    ++bins_[static_cast<std::size_t>(bin_of(v))];
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return min_; }
  std::uint64_t max() const { return max_; }
  const std::array<std::uint64_t, kBins>& bins() const { return bins_; }

  static int bin_of(std::uint64_t v) { return std::bit_width(v); }
  /// Smallest value that lands in bin `i`.
  static std::uint64_t bin_floor(int i) {
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
  }

 private:
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
  std::array<std::uint64_t, kBins> bins_{};
};

/// Name-keyed registry. Entries are created on first access and never move
/// (std::map), so hot paths may cache the returned references. std::map also
/// keeps serialization order sorted and therefore stable.
class Metrics {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace gdrshmem::core
