// Central metrics registry: named monotonic counters, gauges (value + peak),
// and log2-binned histograms. One instance lives on the Runtime and is
// populated from operation accounting (per-protocol x per-op-kind latency
// and message-size histograms), the proxy daemons (queue depth, staging
// occupancy), the fault injector (retransmits, replays, crashes), and — at
// snapshot time — the registration cache, verbs layer, and symmetric heaps.
//
// Everything here is pure bookkeeping on the wall-clock side: recording
// never touches the simulation engine, so metrics cannot perturb virtual
// time or event order.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <map>
#include <string>

namespace gdrshmem::core {

class Counter {
 public:
  void add(std::uint64_t delta = 1) { value_ += delta; }
  /// Snapshot assignment for counters maintained elsewhere and mirrored into
  /// the registry at report time.
  void set(std::uint64_t v) { value_ = v; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(std::uint64_t v) {
    value_ = v;
    max_ = std::max(max_, v);
  }
  std::uint64_t value() const { return value_; }
  std::uint64_t max() const { return max_; }

 private:
  std::uint64_t value_ = 0;
  std::uint64_t max_ = 0;
};

/// Log2-binned histogram: bin 0 holds zeros, bin i (i >= 1) holds values in
/// [2^(i-1), 2^i). 64-bit range, so 65 bins cover everything.
class Histogram {
 public:
  static constexpr int kBins = 65;

  void record(std::uint64_t v) {
    ++count_;
    sum_ += v;
    min_ = count_ == 1 ? v : std::min(min_, v);
    max_ = std::max(max_, v);
    ++bins_[static_cast<std::size_t>(bin_of(v))];
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return min_; }
  std::uint64_t max() const { return max_; }
  const std::array<std::uint64_t, kBins>& bins() const { return bins_; }

  static int bin_of(std::uint64_t v) { return std::bit_width(v); }
  /// Smallest value that lands in bin `i`.
  static std::uint64_t bin_floor(int i) {
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
  }

  /// Estimate the `p`-quantile (p in [0, 1], e.g. 0.5 / 0.99 / 0.999) by
  /// linear interpolation within the log2 bin holding the target rank. The
  /// bin edges are tightened with the tracked exact min/max, so a
  /// single-valued histogram reports that value exactly and every estimate
  /// stays within [min, max]. Returns 0 on an empty histogram.
  std::uint64_t percentile(double p) const {
    if (count_ == 0) return 0;
    p = std::clamp(p, 0.0, 1.0);
    // Rank of the target sample, 1-based: ceil(p * count), at least 1.
    std::uint64_t rank = static_cast<std::uint64_t>(
        p * static_cast<double>(count_) + 0.9999999999);
    rank = std::clamp<std::uint64_t>(rank, 1, count_);
    std::uint64_t seen = 0;
    for (int i = 0; i < kBins; ++i) {
      std::uint64_t n = bins_[static_cast<std::size_t>(i)];
      if (n == 0) continue;
      if (seen + n < rank) {
        seen += n;
        continue;
      }
      // Target lands in bin i: interpolate between the bin's effective
      // bounds. bin_floor(i + 1) would overflow for the last bin; max_
      // bounds it in every case.
      std::uint64_t lo = std::max(bin_floor(i), min_);
      std::uint64_t hi = i + 1 >= kBins ? max_
                                        : std::min(bin_floor(i + 1) - 1, max_);
      if (hi <= lo) return lo;
      double frac = n == 1 ? 0.0
                           : static_cast<double>(rank - seen - 1) /
                                 static_cast<double>(n - 1);
      return lo + static_cast<std::uint64_t>(
                      frac * static_cast<double>(hi - lo) + 0.5);
    }
    return max_;
  }

 private:
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
  std::array<std::uint64_t, kBins> bins_{};
};

/// Name-keyed registry. Entries are created on first access and never move
/// (std::map), so hot paths may cache the returned references. std::map also
/// keeps serialization order sorted and therefore stable.
class Metrics {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace gdrshmem::core
