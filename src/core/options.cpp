// RuntimeOptions::from_env: every GDRSHMEM_* environment variable is parsed
// and validated here, in one place. Unknown GDRSHMEM_* names are an error —
// a silently ignored typo in a tuning knob is worse than a refusal to start.
#include <cctype>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>
#include <string_view>

#include "core/collectives.hpp"
#include "core/runtime.hpp"

extern char** environ;

namespace gdrshmem::core {
namespace {

[[noreturn]] void bad(std::string_view var, const std::string& why) {
  throw ShmemError(std::string(var) + ": " + why);
}

double env_double(std::string_view var, const std::string& value) {
  try {
    std::size_t used = 0;
    double v = std::stod(value, &used);
    if (used != value.size()) bad(var, "trailing characters in \"" + value + "\"");
    return v;
  } catch (const std::invalid_argument&) {
    bad(var, "not a number: \"" + value + "\"");
  } catch (const std::out_of_range&) {
    bad(var, "number out of range: \"" + value + "\"");
  }
}

long long env_int(std::string_view var, const std::string& value) {
  try {
    std::size_t used = 0;
    long long v = std::stoll(value, &used);
    if (used != value.size()) bad(var, "trailing characters in \"" + value + "\"");
    return v;
  } catch (const std::exception&) {
    bad(var, "not an integer: \"" + value + "\"");
  }
}

/// Byte size with an optional K/M/G suffix (powers of 1024): "4M", "512K".
std::size_t env_size(std::string_view var, const std::string& value) {
  if (value.empty()) bad(var, "empty size");
  std::string digits = value;
  std::size_t mult = 1;
  char suffix = static_cast<char>(
      std::toupper(static_cast<unsigned char>(digits.back())));
  if (suffix == 'K' || suffix == 'M' || suffix == 'G') {
    mult = suffix == 'K' ? (1u << 10) : suffix == 'M' ? (1u << 20) : (1u << 30);
    digits.pop_back();
  }
  long long v = env_int(var, digits);
  if (v < 0) bad(var, "size must be >= 0");
  auto uv = static_cast<std::size_t>(v);
  if (mult != 1 && uv > std::numeric_limits<std::size_t>::max() / mult) {
    bad(var, "size out of range: \"" + value + "\" overflows");
  }
  return uv * mult;
}

bool env_bool(std::string_view var, const std::string& value) {
  if (value == "1" || value == "true" || value == "on") return true;
  if (value == "0" || value == "false" || value == "off") return false;
  bad(var, "expected 0/1 (or true/false, on/off), got \"" + value + "\"");
}

}  // namespace

RuntimeOptions RuntimeOptions::from_env() {
  // The defaulted sim_backend member already consults GDRSHMEM_SIM_BACKEND
  // (and throws std::invalid_argument on garbage); surface that through the
  // same error type as every other variable here.
  RuntimeOptions opts = [] {
    try {
      return RuntimeOptions{};
    } catch (const std::invalid_argument& e) {
      throw ShmemError(e.what());
    }
  }();
  for (char** env = environ; *env != nullptr; ++env) {
    std::string_view entry(*env);
    if (entry.substr(0, 9) != "GDRSHMEM_") continue;
    auto eq = entry.find('=');
    if (eq == std::string_view::npos) continue;
    std::string_view key = entry.substr(0, eq);
    std::string value(entry.substr(eq + 1));

    if (key == "GDRSHMEM_SIM_BACKEND") {
      // Also consumed directly by the engine; validated here for the error
      // message and mirrored into the options for programmatic use.
      if (value == "fibers") {
        opts.sim_backend = sim::BackendKind::kFibers;
      } else if (value == "threads") {
        opts.sim_backend = sim::BackendKind::kThreads;
      } else {
        bad(key, "expected 'fibers' or 'threads', got \"" + value + "\"");
      }
    } else if (key == "GDRSHMEM_SIM_STACK_KB") {
      // Consumed by the fiber backend at spawn time; validate eagerly.
      // Units: KiB of usable stack per fiber (excluding the guard page).
      if (env_int(key, value) < 64) bad(key, "must be >= 64 (KiB per fiber)");
    } else if (key == "GDRSHMEM_SIM_STACK_POOL") {
      // Consumed by the fiber stack pool at first use; validate eagerly.
      // Units: number of stacks retained across engine lifetimes (0 disables
      // pooling).
      if (env_int(key, value) < 0) bad(key, "must be >= 0 (pooled stacks)");
    } else if (key == "GDRSHMEM_SIM_QUEUE") {
      // Also consumed directly by the engine; validated here for the error
      // message and mirrored into the options for programmatic use.
      if (value == "heap") {
        opts.sim_queue = sim::QueueKind::kHeap;
      } else if (value == "wheel") {
        opts.sim_queue = sim::QueueKind::kWheel;
      } else {
        bad(key, "expected 'heap' or 'wheel', got \"" + value + "\"");
      }
    } else if (key == "GDRSHMEM_SIM_BATCH") {
      opts.sim_batch = env_bool(key, value);
    } else if (key == "GDRSHMEM_SIM_FIBER_SWITCH") {
      // Consumed by the fiber backend at engine construction; validate
      // eagerly. ("fast" still runs as ucontext on non-x86-64 hosts, but the
      // spelling must be one of the two modes everywhere.)
      if (value != "fast" && value != "ucontext") {
        bad(key, "expected 'fast' or 'ucontext', got \"" + value + "\"");
      }
    } else if (key == "GDRSHMEM_TRANSPORT") {
      if (value == "naive") {
        opts.transport = TransportKind::kNaive;
      } else if (value == "host-pipeline") {
        opts.transport = TransportKind::kHostPipeline;
      } else if (value == "enhanced-gdr") {
        opts.transport = TransportKind::kEnhancedGdr;
      } else {
        bad(key, "expected naive | host-pipeline | enhanced-gdr, got \"" +
                     value + "\"");
      }
    } else if (key == "GDRSHMEM_HOST_HEAP") {
      opts.host_heap_bytes = env_size(key, value);
      if (opts.host_heap_bytes < (1u << 16)) bad(key, "heap must be >= 64K");
    } else if (key == "GDRSHMEM_GPU_HEAP") {
      opts.gpu_heap_bytes = env_size(key, value);
      if (opts.gpu_heap_bytes < (1u << 16)) bad(key, "heap must be >= 64K");
    } else if (key == "GDRSHMEM_PMEM_HEAP") {
      // 0 (the default) disables the pmem domain entirely; a present heap
      // obeys the same 64K floor as the host and GPU heaps.
      opts.pmem_heap_bytes = env_size(key, value);
      if (opts.pmem_heap_bytes > 0 && opts.pmem_heap_bytes < (1u << 16)) {
        bad(key, "heap must be >= 64K (or 0 to disable the pmem domain)");
      }
    } else if (key == "GDRSHMEM_SERVICE_THREAD") {
      opts.service_thread = env_bool(key, value);
    } else if (key == "GDRSHMEM_SERVICE_THREAD_PENALTY") {
      opts.service_thread_compute_penalty = env_double(key, value);
      if (opts.service_thread_compute_penalty < 1.0) bad(key, "must be >= 1");
    } else if (key == "GDRSHMEM_USE_PROXY") {
      opts.tuning.use_proxy = env_bool(key, value);
    } else if (key == "GDRSHMEM_EAGER_LIMIT") {
      opts.tuning.eager_limit = env_size(key, value);
    } else if (key == "GDRSHMEM_PIPELINE_CHUNK") {
      opts.tuning.pipeline_chunk = env_size(key, value);
      if (opts.tuning.pipeline_chunk == 0) bad(key, "chunk must be > 0");
    } else if (key == "GDRSHMEM_INLINE_PUT_LIMIT") {
      opts.tuning.inline_put_limit = env_size(key, value);
    } else if (key == "GDRSHMEM_LOOPBACK_GDR_WRITE_LIMIT") {
      opts.tuning.loopback_gdr_write_limit = env_size(key, value);
    } else if (key == "GDRSHMEM_LOOPBACK_GDR_READ_LIMIT") {
      opts.tuning.loopback_gdr_read_limit = env_size(key, value);
    } else if (key == "GDRSHMEM_DIRECT_GDR_WRITE_LIMIT") {
      opts.tuning.direct_gdr_write_limit = env_size(key, value);
    } else if (key == "GDRSHMEM_DIRECT_GDR_READ_LIMIT") {
      opts.tuning.direct_gdr_read_limit = env_size(key, value);
    } else if (key == "GDRSHMEM_INTER_SOCKET_GDR_DIVISOR") {
      long long v = env_int(key, value);
      if (v < 1) bad(key, "divisor must be >= 1");
      opts.tuning.inter_socket_gdr_divisor = static_cast<std::size_t>(v);
    } else if (key == "GDRSHMEM_MAX_SW_REPLAYS") {
      long long v = env_int(key, value);
      if (v < 1) bad(key, "must be >= 1");
      opts.tuning.max_sw_replays = static_cast<int>(v);
    } else if (key == "GDRSHMEM_REPLAY_BACKOFF_US") {
      opts.tuning.replay_backoff_base_us = env_double(key, value);
      if (opts.tuning.replay_backoff_base_us <= 0) bad(key, "must be > 0");
    } else if (key == "GDRSHMEM_PROXY_TIMEOUT_US") {
      opts.tuning.proxy_timeout_us = env_double(key, value);
      if (opts.tuning.proxy_timeout_us <= 0) bad(key, "must be > 0");
    } else if (key == "GDRSHMEM_PROXY_MAX_REISSUES") {
      long long v = env_int(key, value);
      if (v < 1) bad(key, "must be >= 1");
      opts.tuning.proxy_max_reissues = static_cast<int>(v);
    } else if (key == "GDRSHMEM_COLL_CHUNK") {
      opts.tuning.coll_chunk = env_size(key, value);
      if (opts.tuning.coll_chunk < (1u << 12)) bad(key, "chunk must be >= 4K");
    } else if (key == "GDRSHMEM_COLL_ALGO") {
      // Either a single algorithm name (applied to every collective kind
      // that implements it; the rest stay on auto selection) or a comma
      // list of kind=algo pairs: "bcast=ring,allreduce=recdbl".
      auto parse_algo = [&](const std::string& name) {
        try {
          return coll::algo_from_string(name);
        } catch (const std::invalid_argument& e) {
          bad(key, e.what());
        }
      };
      if (value.find('=') == std::string::npos) {
        CollAlgo algo = parse_algo(value);
        bool any = false;
        for (std::size_t k = 0; k < static_cast<std::size_t>(CollKind::kCount_);
             ++k) {
          if (coll::algo_supported(static_cast<CollKind>(k), algo)) {
            opts.tuning.coll_force[k] = algo;
            any = true;
          }
        }
        if (!any && algo != CollAlgo::kAuto) {
          bad(key, "\"" + value + "\" applies to no collective kind");
        }
      } else {
        std::string rest = value;
        while (!rest.empty()) {
          auto comma = rest.find(',');
          std::string pair = rest.substr(0, comma);
          rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
          auto eq2 = pair.find('=');
          if (eq2 == std::string::npos || eq2 == 0 || eq2 + 1 == pair.size()) {
            bad(key, "expected kind=algo pairs, got \"" + pair + "\"");
          }
          std::string kind_name = pair.substr(0, eq2);
          CollAlgo algo = parse_algo(pair.substr(eq2 + 1));
          int kind = -1;
          for (std::size_t k = 0;
               k < static_cast<std::size_t>(CollKind::kCount_); ++k) {
            if (kind_name == to_string(static_cast<CollKind>(k))) {
              kind = static_cast<int>(k);
            }
          }
          if (kind < 0) {
            bad(key, "unknown collective kind \"" + kind_name +
                         "\" (known: barrier, bcast, allreduce, fcollect, "
                         "alltoall)");
          }
          if (!coll::algo_supported(static_cast<CollKind>(kind), algo)) {
            bad(key, std::string(to_string(algo)) + " is not a " + kind_name +
                         " algorithm");
          }
          opts.tuning.coll_force[static_cast<std::size_t>(kind)] = algo;
        }
      }
    } else if (key == "GDRSHMEM_IB_TRANSPORT") {
      if (value == "rc") {
        opts.ib_transport = ib::QpKind::kRc;
      } else if (value == "ud") {
        opts.ib_transport = ib::QpKind::kUd;
      } else if (value == "dc") {
        opts.ib_transport = ib::QpKind::kDc;
      } else if (value == "srd") {
        opts.ib_transport = ib::QpKind::kSrd;
      } else {
        bad(key, "expected rc | ud | dc | srd, got \"" + value + "\"");
      }
    } else if (key == "GDRSHMEM_IB_RAILS") {
      long long v = env_int(key, value);
      if (v != 1 && v != 2) bad(key, "expected 1 or 2 (HCA rails per node)");
      opts.ib_rails = static_cast<int>(v);
    } else if (key == "GDRSHMEM_IB_SRQ") {
      opts.ib_srq = env_bool(key, value);
    } else if (key == "GDRSHMEM_IB_SRD_SEED") {
      long long v = env_int(key, value);
      if (v < 0) bad(key, "seed must be >= 0");
      opts.ib_srd_seed = static_cast<std::uint64_t>(v);
    } else if (key == "GDRSHMEM_IB_SRD_JITTER_US") {
      opts.ib_srd_jitter_us = env_double(key, value);
      if (opts.ib_srd_jitter_us < 0.0) {
        bad(key, "jitter window must be >= 0 (us; 0 disables jitter)");
      }
    } else if (key == "GDRSHMEM_DEVICE_BACKEND") {
      if (value == "gpu-ib") {
        opts.device_backend = DeviceBackendKind::kGpuIb;
      } else if (value == "reverse") {
        opts.device_backend = DeviceBackendKind::kReverseOffload;
      } else {
        bad(key, "expected 'gpu-ib' or 'reverse', got \"" + value + "\"");
      }
    } else if (key == "GDRSHMEM_DEVICE_QUEUE_DEPTH") {
      long long v = env_int(key, value);
      if (v < 1) bad(key, "must be >= 1 (outstanding device commands)");
      opts.device_queue_depth = static_cast<std::size_t>(v);
    } else if (key == "GDRSHMEM_FAULTS") {
      try {
        opts.faults = sim::FaultPlan::parse(value);
      } catch (const std::invalid_argument& e) {
        bad(key, e.what());
      }
    } else if (key == "GDRSHMEM_TRACE") {
      opts.trace = env_bool(key, value);
    } else if (key == "GDRSHMEM_TRACE_CAP") {
      // Already consumed by the defaulted trace_cap member; re-parse here so
      // the error carries the uniform ShmemError shape.
      try {
        opts.trace_cap = trace_cap_from_env();
      } catch (const std::invalid_argument& e) {
        throw ShmemError(e.what());
      }
    } else {
      bad(key,
          "unknown GDRSHMEM_* variable (known: SIM_BACKEND, SIM_QUEUE, "
          "SIM_BATCH, SIM_FIBER_SWITCH, SIM_STACK_KB, SIM_STACK_POOL, "
          "TRANSPORT, HOST_HEAP, GPU_HEAP, PMEM_HEAP, SERVICE_THREAD, "
          "SERVICE_THREAD_PENALTY, USE_PROXY, EAGER_LIMIT, PIPELINE_CHUNK, "
          "INLINE_PUT_LIMIT, LOOPBACK_GDR_WRITE_LIMIT, "
          "LOOPBACK_GDR_READ_LIMIT, DIRECT_GDR_WRITE_LIMIT, "
          "DIRECT_GDR_READ_LIMIT, INTER_SOCKET_GDR_DIVISOR, COLL_ALGO, "
          "COLL_CHUNK, MAX_SW_REPLAYS, REPLAY_BACKOFF_US, PROXY_TIMEOUT_US, "
          "PROXY_MAX_REISSUES, DEVICE_BACKEND, DEVICE_QUEUE_DEPTH, "
          "IB_TRANSPORT, IB_RAILS, IB_SRQ, IB_SRD_SEED, IB_SRD_JITTER_US, "
          "FAULTS, TRACE, TRACE_CAP)");
    }
  }
  return opts;
}

}  // namespace gdrshmem::core
