// Protocol-selection thresholds of the Enhanced-GDR design. These are the
// "runtime parameters ... tuned for different architectures" of Section
// III-B: GDR is latency-optimal for small messages but its PCIe P2P
// bandwidth caps (Table III) make staging designs win past a crossover.
#pragma once

#include <array>
#include <cstddef>

#include "core/types.hpp"

namespace gdrshmem::core {

struct Tuning {
  // ---- intra-node hybrid (loopback GDR vs CUDA IPC / shmem_ptr) ----------
  /// Max size for loopback-GDR when the GPU leg is a P2P *write*
  /// (e.g. H-D put: HCA writes into the GPU). Crossover vs the one-copy
  /// CUDA IPC path measured by bench_ablation_thresholds.
  std::size_t loopback_gdr_write_limit = 64 * 1024;
  /// Max size when the GPU leg is a P2P *read* (lower: read bw is worse;
  /// throughput-tuned below the pairwise crossover, like the inter-node
  /// read window — see bench_fig12_lbm).
  std::size_t loopback_gdr_read_limit = 8 * 1024;

  // ---- inter-node hybrid (Direct GDR vs pipeline / proxy) ----------------
  /// Max size for Direct GDR when the GPU leg is a P2P write (the write cap
  /// of 6,396 MB/s is near wire speed, so the window is wide).
  std::size_t direct_gdr_write_limit = 256 * 1024;
  /// Max size when a GPU leg requires a P2P read (source on GPU, or a get).
  /// Pairwise latency crosses over near ~128 KB (bench_ablation_thresholds),
  /// but under concurrent application traffic the P2P read serializes on the
  /// source GPU's PCIe slot while the pipeline overlaps D->H with the wire —
  /// so the default window is throughput-tuned to 32 KB (bench_fig12_lbm).
  std::size_t direct_gdr_read_limit = 32 * 1024;
  /// When the PE's HCA and GPU sit on different sockets the P2P caps are
  /// catastrophic (247 / 1179 MB/s); shrink the GDR window by this divisor.
  std::size_t inter_socket_gdr_divisor = 16;

  /// Chunk size of the pipeline-GDR-write and proxy pipelines.
  std::size_t pipeline_chunk = 256 * 1024;

  /// Puts at or below this size are buffered inline (source buffer is
  /// immediately reusable without waiting for the ACK).
  std::size_t inline_put_limit = 128;

  /// Use the per-node proxy daemon for large transfers that would otherwise
  /// hit a P2P read bottleneck or require target involvement.
  bool use_proxy = true;

  // ---- baseline (host pipeline) -------------------------------------------
  /// Eager/rendezvous switch of the baseline transport.
  std::size_t eager_limit = 8 * 1024;

  // ---- collectives engine (core/collectives.*) ----------------------------
  /// Piece size of the chunked ring pipelines (allreduce reduce-scatter,
  /// ring broadcast). GDRSHMEM_COLL_CHUNK. Also sizes the per-team sync
  /// workspace (2 * coll_chunk per team slot, clamped to the heap).
  std::size_t coll_chunk = 64 * 1024;
  /// Allreduce: recursive doubling up to this many bytes, ring above.
  std::size_t coll_rd_max = 16 * 1024;
  /// Broadcast: binomial tree up to this size, chunked ring pipeline above.
  std::size_t coll_bcast_binomial_max = 64 * 1024;
  /// Fcollect: Bruck's log-step algorithm up to this per-PE block size
  /// (when np * nbytes also fits the workspace), ring above.
  std::size_t coll_bruck_max = 8 * 1024;
  /// Alltoall: linear blast below this block size, pairwise rounds above.
  std::size_t coll_pairwise_min = 32 * 1024;
  /// GPU-domain buffers divide the small-message ceilings above by this
  /// (kernel-launch overhead makes many small device combines costly, so
  /// the bandwidth algorithms take over earlier).
  std::size_t coll_gpu_ceiling_divisor = 4;
  /// Forced algorithm per collective kind (kAuto = select by size/team/
  /// domain). GDRSHMEM_COLL_ALGO.
  std::array<CollAlgo, static_cast<std::size_t>(CollKind::kCount_)> coll_force{};

  // ---- software fault recovery (tier 2) -----------------------------------
  // Only consulted when RuntimeOptions::faults is non-empty. Tier 1 (the
  // HCA retransmit envelope) lives in hw::SystemParams; these govern what
  // software does once a completion surfaces in error state or a proxy
  // request times out.
  /// Re-posts of one operation before the runtime gives up and throws.
  int max_sw_replays = 12;
  /// Backoff before replay k is base * 2^k, capped below.
  double replay_backoff_base_us = 25.0;
  double replay_backoff_cap_us = 4000.0;
  /// Requester-side timeout for one proxy request/window before re-issuing
  /// (scaled up with transfer size internally).
  double proxy_timeout_us = 4000.0;
  /// Re-issues of a proxy request before the runtime gives up.
  int proxy_max_reissues = 8;
};

}  // namespace gdrshmem::core
