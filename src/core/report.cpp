#include "core/report.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "core/json.hpp"
#include "core/proxy.hpp"

namespace gdrshmem::core {

std::string format_report(Runtime& rt) {
  std::ostringstream os;
  const OpStats& st = rt.stats();
  os << "=== gdrshmem runtime report (" << to_string(rt.options().transport)
     << ", " << rt.num_pes() << " PEs on " << rt.cluster().num_nodes()
     << " nodes) ===\n";
  os << "ops: " << st.puts << " puts, " << st.gets << " gets, " << st.atomics
     << " atomics, " << st.barriers << " barrier entries\n";
  os << "virtual time: " << std::fixed << std::setprecision(2)
     << rt.engine().now().to_ms() << " ms ("
     << rt.engine().events_executed() << " events)\n";
  os << std::left << std::setw(22) << "protocol" << std::right << std::setw(12)
     << "ops" << std::setw(16) << "bytes" << '\n';
  for (std::size_t i = 0; i < static_cast<std::size_t>(Protocol::kCount_); ++i) {
    if (st.ops_by_protocol[i] == 0) continue;
    os << std::left << std::setw(22) << to_string(static_cast<Protocol>(i))
       << std::right << std::setw(12) << st.ops_by_protocol[i] << std::setw(16)
       << st.bytes_by_protocol[i] << '\n';
  }
  os << "registration cache: " << rt.verbs().reg_cache().hits() << " hits, "
     << rt.verbs().reg_cache().misses() << " misses, "
     << rt.verbs().reg_cache().evictions() << " evictions (cap "
     << rt.verbs().reg_cache().capacity() << ")\n";
  os << "ib transport: " << rt.ib().name() << ", " << rt.ib().rails()
     << " rail(s)\n";
  if (rt.proxies_enabled()) {
    std::uint64_t gets = 0, puts = 0;
    for (int n = 0; n < rt.cluster().num_nodes(); ++n) {
      gets += rt.proxy(n).gets_served();
      puts += rt.proxy(n).puts_served();
    }
    os << "proxy daemons: " << gets << " gets, " << puts
       << " puts progressed\n";
  }
  if (rt.faults_enabled()) {
    const sim::FaultInjector& inj = rt.faults();
    os << "fault injection (plan: " << inj.plan().spec() << ")\n";
    os << std::left << std::setw(22) << "  event" << std::right << std::setw(12)
       << "count" << '\n';
    for (std::size_t i = 0; i < static_cast<std::size_t>(sim::FaultEvent::kCount_);
         ++i) {
      auto ev = static_cast<sim::FaultEvent>(i);
      os << std::left << std::setw(22)
         << ("  " + std::string(sim::to_string(ev))) << std::right
         << std::setw(12) << inj.count(ev) << '\n';
    }
  }
  std::size_t host_used = 0, gpu_used = 0, pmem_used = 0;
  for (int pe = 0; pe < rt.num_pes(); ++pe) {
    host_used += rt.heap(pe, Domain::kHost).used();
    gpu_used += rt.heap(pe, Domain::kGpu).used();
    pmem_used += rt.heap(pe, Domain::kPmem).used();
  }
  os << "symmetric heaps: " << host_used / 1024 << " KiB host, "
     << gpu_used / 1024 << " KiB GPU";
  if (rt.options().pmem_heap_bytes > 0) {
    os << ", " << pmem_used / 1024 << " KiB pmem";
  }
  os << " in use across PEs\n";
  if (rt.tracer().enabled()) {
    os << "trace: " << rt.tracer().size() << " events retained, "
       << rt.tracer().dropped() << " dropped (cap " << rt.tracer().capacity()
       << ")\n";
  }
  return os.str();
}

std::string format_report_json(Runtime& rt) {
  rt.snapshot_metrics();
  const OpStats& st = rt.stats();
  json::Writer w;
  w.begin_object();
  w.field("schema", 1);
  w.field("transport", to_string(rt.options().transport));
  w.field("pes", rt.num_pes());
  w.field("nodes", rt.cluster().num_nodes());
  w.field_fixed("virtual_time_us", rt.engine().now().to_us(), 3);
  w.field("events_executed", rt.engine().events_executed());
  w.key("ops").begin_object();
  w.field("puts", st.puts);
  w.field("gets", st.gets);
  w.field("atomics", st.atomics);
  w.field("barriers", st.barriers);
  w.end_object();
  w.key("protocols").begin_array();
  for (std::size_t i = 0; i < static_cast<std::size_t>(Protocol::kCount_); ++i) {
    if (st.ops_by_protocol[i] == 0) continue;
    w.begin_object();
    w.field("name", to_string(static_cast<Protocol>(i)));
    w.field("ops", st.ops_by_protocol[i]);
    w.field("bytes", st.bytes_by_protocol[i]);
    w.end_object();
  }
  w.end_array();
  w.key("reg_cache").begin_object();
  w.field("hits", rt.verbs().reg_cache().hits());
  w.field("misses", rt.verbs().reg_cache().misses());
  w.field("evictions", rt.verbs().reg_cache().evictions());
  w.end_object();
  w.key("ib").begin_object();
  w.field("transport", rt.ib().name());
  w.field("rails", rt.ib().rails());
  w.end_object();
  if (rt.proxies_enabled()) {
    std::uint64_t gets = 0, puts = 0, restarts = 0;
    for (int n = 0; n < rt.cluster().num_nodes(); ++n) {
      gets += rt.proxy(n).gets_served();
      puts += rt.proxy(n).puts_served();
      restarts += static_cast<std::uint64_t>(rt.proxy(n).restarts());
    }
    w.key("proxy").begin_object();
    w.field("gets_served", gets);
    w.field("puts_served", puts);
    w.field("restarts", restarts);
    w.end_object();
  }
  if (rt.faults_enabled()) {
    const sim::FaultInjector& inj = rt.faults();
    w.key("faults").begin_object();
    w.field("plan", inj.plan().spec());
    w.key("counts").begin_object();
    for (std::size_t i = 0; i < static_cast<std::size_t>(sim::FaultEvent::kCount_);
         ++i) {
      auto ev = static_cast<sim::FaultEvent>(i);
      w.field(sim::to_string(ev), inj.count(ev));
    }
    w.end_object();
    w.end_object();
  }
  std::size_t host_used = 0, gpu_used = 0, pmem_used = 0;
  for (int pe = 0; pe < rt.num_pes(); ++pe) {
    host_used += rt.heap(pe, Domain::kHost).used();
    gpu_used += rt.heap(pe, Domain::kGpu).used();
    pmem_used += rt.heap(pe, Domain::kPmem).used();
  }
  w.key("heap").begin_object();
  w.field("host_used_bytes", static_cast<std::uint64_t>(host_used));
  w.field("gpu_used_bytes", static_cast<std::uint64_t>(gpu_used));
  w.field("pmem_used_bytes", static_cast<std::uint64_t>(pmem_used));
  w.end_object();
  w.key("trace").begin_object();
  w.field("enabled", rt.tracer().enabled());
  w.field("recorded", static_cast<std::uint64_t>(rt.tracer().size()));
  w.field("dropped", rt.tracer().dropped());
  w.field("capacity", static_cast<std::uint64_t>(rt.tracer().capacity()));
  w.end_object();
  const Metrics& m = rt.metrics();
  w.key("metrics").begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, c] : m.counters()) w.field(name, c.value());
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : m.gauges()) {
    w.key(name).begin_object();
    w.field("value", g.value());
    w.field("max", g.max());
    w.end_object();
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : m.histograms()) {
    w.key(name).begin_object();
    w.field("count", h.count());
    w.field("sum", h.sum());
    w.field("min", h.min());
    w.field("max", h.max());
    w.field("p50", h.percentile(0.50));
    w.field("p99", h.percentile(0.99));
    w.field("p999", h.percentile(0.999));
    // Sparse bins as [floor, count] pairs — 65 mostly-empty slots would
    // dwarf the payload.
    w.key("bins").begin_array();
    for (int i = 0; i < Histogram::kBins; ++i) {
      std::uint64_t n = h.bins()[static_cast<std::size_t>(i)];
      if (n == 0) continue;
      w.begin_array();
      w.value(Histogram::bin_floor(i));
      w.value(n);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  w.end_object();
  return w.str() + "\n";
}

void print_report(Runtime& rt, std::ostream& os) { os << format_report(rt); }

}  // namespace gdrshmem::core
