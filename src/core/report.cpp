#include "core/report.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "core/proxy.hpp"

namespace gdrshmem::core {

std::string format_report(Runtime& rt) {
  std::ostringstream os;
  const OpStats& st = rt.stats();
  os << "=== gdrshmem runtime report (" << to_string(rt.options().transport)
     << ", " << rt.num_pes() << " PEs on " << rt.cluster().num_nodes()
     << " nodes) ===\n";
  os << "ops: " << st.puts << " puts, " << st.gets << " gets, " << st.atomics
     << " atomics, " << st.barriers << " barrier entries\n";
  os << "virtual time: " << std::fixed << std::setprecision(2)
     << rt.engine().now().to_ms() << " ms ("
     << rt.engine().events_executed() << " events)\n";
  os << std::left << std::setw(22) << "protocol" << std::right << std::setw(12)
     << "ops" << std::setw(16) << "bytes" << '\n';
  for (std::size_t i = 0; i < static_cast<std::size_t>(Protocol::kCount_); ++i) {
    if (st.ops_by_protocol[i] == 0) continue;
    os << std::left << std::setw(22) << to_string(static_cast<Protocol>(i))
       << std::right << std::setw(12) << st.ops_by_protocol[i] << std::setw(16)
       << st.bytes_by_protocol[i] << '\n';
  }
  os << "registration cache: " << rt.verbs().reg_cache().hits() << " hits, "
     << rt.verbs().reg_cache().misses() << " misses\n";
  if (rt.proxies_enabled()) {
    std::uint64_t gets = 0, puts = 0;
    for (int n = 0; n < rt.cluster().num_nodes(); ++n) {
      gets += rt.proxy(n).gets_served();
      puts += rt.proxy(n).puts_served();
    }
    os << "proxy daemons: " << gets << " gets, " << puts
       << " puts progressed\n";
  }
  if (rt.faults_enabled()) {
    const sim::FaultInjector& inj = rt.faults();
    os << "fault injection (plan: " << inj.plan().spec() << ")\n";
    os << std::left << std::setw(22) << "  event" << std::right << std::setw(12)
       << "count" << '\n';
    for (std::size_t i = 0; i < static_cast<std::size_t>(sim::FaultEvent::kCount_);
         ++i) {
      auto ev = static_cast<sim::FaultEvent>(i);
      os << std::left << std::setw(22)
         << ("  " + std::string(sim::to_string(ev))) << std::right
         << std::setw(12) << inj.count(ev) << '\n';
    }
  }
  std::size_t host_used = 0, gpu_used = 0;
  for (int pe = 0; pe < rt.num_pes(); ++pe) {
    host_used += rt.heap(pe, Domain::kHost).used();
    gpu_used += rt.heap(pe, Domain::kGpu).used();
  }
  os << "symmetric heaps: " << host_used / 1024 << " KiB host, "
     << gpu_used / 1024 << " KiB GPU in use across PEs\n";
  return os.str();
}

void print_report(Runtime& rt, std::ostream& os) { os << format_report(rt); }

}  // namespace gdrshmem::core
