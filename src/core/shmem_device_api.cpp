#include "gdrshmem/shmem_device.h"

namespace gdrshmem::capi {

void shmemx_launch_kernel(core::Ctx& ctx, double per_cell_ns,
                          core::DeviceScope scope,
                          const std::function<void(shmemx_device_ctx_t)>& body) {
  ctx.launch_kernel_device(per_cell_ns, scope,
                           [&](core::DeviceCtx& dctx) { body(&dctx); });
}

int shmemx_my_pe(shmemx_device_ctx_t dctx) { return dctx->my_pe(); }
int shmemx_n_pes(shmemx_device_ctx_t dctx) { return dctx->n_pes(); }

void shmemx_putmem(shmemx_device_ctx_t dctx, void* dst_sym, const void* src,
                   std::size_t n, int pe) {
  dctx->putmem(dst_sym, src, n, pe);
}
void shmemx_getmem(shmemx_device_ctx_t dctx, void* dst, const void* src_sym,
                   std::size_t n, int pe) {
  dctx->getmem(dst, src_sym, n, pe);
}
void shmemx_putmem_nbi(shmemx_device_ctx_t dctx, void* dst_sym,
                       const void* src, std::size_t n, int pe) {
  dctx->putmem_nbi(dst_sym, src, n, pe);
}
void shmemx_getmem_nbi(shmemx_device_ctx_t dctx, void* dst,
                       const void* src_sym, std::size_t n, int pe) {
  dctx->getmem_nbi(dst, src_sym, n, pe);
}

void shmemx_putmem_signal(shmemx_device_ctx_t dctx, void* dst_sym,
                          const void* src, std::size_t n,
                          std::uint64_t* sig_sym, std::uint64_t signal,
                          int pe) {
  dctx->put_signal(dst_sym, src, n, sig_sym, signal, pe);
}

void shmemx_quiet(shmemx_device_ctx_t dctx) { dctx->quiet(); }
void shmemx_fence(shmemx_device_ctx_t dctx) { dctx->fence(); }

void shmemx_signal_wait_until(shmemx_device_ctx_t dctx,
                              const std::uint64_t* sig_sym, core::Cmp cmp,
                              std::uint64_t value) {
  dctx->signal_wait_until(sig_sym, cmp, value);
}
void shmemx_longlong_wait_until(shmemx_device_ctx_t dctx,
                                const long long* sym, core::Cmp cmp,
                                long long value) {
  dctx->wait_until(sym, cmp, value);
}

long long shmemx_atomic_fetch_add(shmemx_device_ctx_t dctx, long long* sym,
                                  long long value, int pe) {
  return dctx->atomic_fetch_add(reinterpret_cast<std::int64_t*>(sym), value,
                                pe);
}
void shmemx_atomic_add(shmemx_device_ctx_t dctx, long long* sym,
                       long long value, int pe) {
  dctx->atomic_add(reinterpret_cast<std::int64_t*>(sym), value, pe);
}
long long shmemx_atomic_compare_swap(shmemx_device_ctx_t dctx, long long* sym,
                                     long long cond, long long value, int pe) {
  return dctx->atomic_compare_swap(reinterpret_cast<std::int64_t*>(sym), cond,
                                   value, pe);
}

void* shmemx_ptr(shmemx_device_ctx_t dctx, const void* sym, int pe) {
  return dctx->ptr(sym, pe);
}

void shmemx_compute(shmemx_device_ctx_t dctx, std::size_t cells) {
  dctx->compute(cells);
}

}  // namespace gdrshmem::capi
