// This file implements the deprecated classic spellings too.
#define GDRSHMEM_NO_DEPRECATE

#include "gdrshmem/shmem.h"

#include <cstring>
#include <vector>

#include "core/ctx.hpp"
#include "sim/engine.hpp"

namespace gdrshmem::capi {

// The binding lives in the simulated process's user slot rather than a
// thread_local: under the fiber backend every PE shares the engine's OS
// thread, so per-OS-thread state cannot tell PEs apart.

Bind::Bind(core::Ctx& ctx) {
  proc_ = sim::Process::current();
  if (proc_ == nullptr) {
    throw core::ShmemError(
        "capi::Bind must be created inside a PE body (process context)");
  }
  if (proc_->user_slot() != nullptr) {
    throw core::ShmemError("a C-API context is already bound on this PE");
  }
  proc_->set_user_slot(&ctx);
}

Bind::~Bind() { proc_->set_user_slot(nullptr); }

core::Ctx& current() {
  sim::Process* p = sim::Process::current();
  if (p == nullptr || p->user_slot() == nullptr) {
    throw core::ShmemError(
        "no OpenSHMEM context bound: create a capi::Bind inside the PE body");
  }
  return *static_cast<core::Ctx*>(p->user_slot());
}

int shmem_my_pe() { return current().my_pe(); }
int shmem_n_pes() { return current().n_pes(); }

void shmem_info_get_version(int* major, int* minor) {
  if (major != nullptr) *major = SHMEM_MAJOR_VERSION;
  if (minor != nullptr) *minor = SHMEM_MINOR_VERSION;
}

void shmem_info_get_name(char* name) {
  if (name == nullptr) return;
  std::strncpy(name, SHMEM_VENDOR_STRING, SHMEM_MAX_NAME_LEN - 1);
  name[SHMEM_MAX_NAME_LEN - 1] = '\0';
}

const char* shmemx_transport_name() {
  return current().runtime().ib().name();
}

int shmemx_rail_count() { return current().runtime().ib().rails(); }

void* shmem_malloc(std::size_t size) {
  return current().shmalloc(size, core::Domain::kHost);
}
void* shmem_malloc(std::size_t size, core::Domain domain) {
  return current().shmalloc(size, domain);
}
void* shmem_calloc(std::size_t count, std::size_t size, core::Domain domain) {
  const std::size_t bytes = count * size;
  void* p = current().shmalloc(bytes, domain);
  if (p != nullptr && bytes > 0) {
    if (domain == core::Domain::kGpu) {
      // Device-domain zeroing: stage zeros through the host (the cudaMemset
      // equivalent, charged as one H->D copy).
      std::vector<std::byte> zeros(bytes);
      current().cuda_memcpy(p, zeros.data(), bytes);
    } else {
      std::memset(p, 0, bytes);
    }
  }
  return p;
}
void shmem_free(void* p) { current().shfree(p); }
void* shmalloc(std::size_t bytes, core::Domain domain) {
  return shmem_malloc(bytes, domain);
}
void shfree(void* p) { shmem_free(p); }
void* shmem_ptr(const void* sym, int pe) { return current().shmem_ptr(sym, pe); }

void shmem_putmem(void* dst, const void* src, std::size_t n, int pe) {
  current().putmem(dst, src, n, pe);
}
void shmem_getmem(void* dst, const void* src, std::size_t n, int pe) {
  current().getmem(dst, src, n, pe);
}
void shmem_putmem_nbi(void* dst, const void* src, std::size_t n, int pe) {
  current().putmem_nbi(dst, src, n, pe);
}
void shmem_getmem_nbi(void* dst, const void* src, std::size_t n, int pe) {
  current().getmem_nbi(dst, src, n, pe);
}
void shmem_put(double* dst, const double* src, std::size_t nelems, int pe) {
  current().put(dst, src, nelems, pe);
}
void shmem_put(float* dst, const float* src, std::size_t nelems, int pe) {
  current().put(dst, src, nelems, pe);
}
void shmem_put(long long* dst, const long long* src, std::size_t nelems, int pe) {
  current().put(dst, src, nelems, pe);
}
void shmem_put(int* dst, const int* src, std::size_t nelems, int pe) {
  current().put(dst, src, nelems, pe);
}
void shmem_get(double* dst, const double* src, std::size_t nelems, int pe) {
  current().get(dst, src, nelems, pe);
}
void shmem_get(float* dst, const float* src, std::size_t nelems, int pe) {
  current().get(dst, src, nelems, pe);
}
void shmem_get(long long* dst, const long long* src, std::size_t nelems, int pe) {
  current().get(dst, src, nelems, pe);
}
void shmem_get(int* dst, const int* src, std::size_t nelems, int pe) {
  current().get(dst, src, nelems, pe);
}
void shmem_put_nbi(double* dst, const double* src, std::size_t nelems, int pe) {
  current().put_nbi(dst, src, nelems, pe);
}
void shmem_put_nbi(long long* dst, const long long* src, std::size_t nelems,
                   int pe) {
  current().put_nbi(dst, src, nelems, pe);
}
void shmem_get_nbi(double* dst, const double* src, std::size_t nelems, int pe) {
  current().get_nbi(dst, src, nelems, pe);
}
void shmem_get_nbi(long long* dst, const long long* src, std::size_t nelems,
                   int pe) {
  current().get_nbi(dst, src, nelems, pe);
}

void shmem_double_put(double* dst, const double* src, std::size_t n, int pe) {
  shmem_put(dst, src, n, pe);
}
void shmem_double_get(double* dst, const double* src, std::size_t n, int pe) {
  shmem_get(dst, src, n, pe);
}
void shmem_float_put(float* dst, const float* src, std::size_t n, int pe) {
  shmem_put(dst, src, n, pe);
}
void shmem_float_get(float* dst, const float* src, std::size_t n, int pe) {
  shmem_get(dst, src, n, pe);
}
void shmem_longlong_put(long long* dst, const long long* src, std::size_t n, int pe) {
  shmem_put(dst, src, n, pe);
}
void shmem_longlong_get(long long* dst, const long long* src, std::size_t n, int pe) {
  shmem_get(dst, src, n, pe);
}

void shmem_quiet() { current().quiet(); }
void shmem_fence() { current().fence(); }
void shmem_barrier_all() { current().barrier_all(); }

void shmem_longlong_wait_until(const long long* sym, int cmp_op, long long value) {
  core::Cmp op;
  switch (cmp_op) {
    case SHMEM_CMP_EQ: op = core::Cmp::kEq; break;
    case SHMEM_CMP_NE: op = core::Cmp::kNe; break;
    case SHMEM_CMP_GT: op = core::Cmp::kGt; break;
    case SHMEM_CMP_GE: op = core::Cmp::kGe; break;
    case SHMEM_CMP_LT: op = core::Cmp::kLt; break;
    case SHMEM_CMP_LE: op = core::Cmp::kLe; break;
    default: throw core::ShmemError("bad SHMEM_CMP_* operator");
  }
  current().wait_until(reinterpret_cast<const std::int64_t*>(sym), op,
                       static_cast<std::int64_t>(value));
}

long long shmem_atomic_fetch_add(long long* sym, long long value, int pe) {
  return current().atomic_fetch_add(reinterpret_cast<std::int64_t*>(sym), value, pe);
}
void shmem_atomic_add(long long* sym, long long value, int pe) {
  current().atomic_add(reinterpret_cast<std::int64_t*>(sym), value, pe);
}
long long shmem_atomic_fetch_inc(long long* sym, int pe) {
  return current().atomic_fetch_inc(reinterpret_cast<std::int64_t*>(sym), pe);
}
void shmem_atomic_inc(long long* sym, int pe) {
  current().atomic_inc(reinterpret_cast<std::int64_t*>(sym), pe);
}
long long shmem_atomic_swap(long long* sym, long long value, int pe) {
  return current().atomic_swap(reinterpret_cast<std::int64_t*>(sym), value, pe);
}
long long shmem_atomic_compare_swap(long long* sym, long long cond,
                                    long long value, int pe) {
  return current().atomic_compare_swap(reinterpret_cast<std::int64_t*>(sym), cond,
                                       value, pe);
}
long long shmem_atomic_fetch(const long long* sym, int pe) {
  return current().atomic_fetch(reinterpret_cast<const std::int64_t*>(sym), pe);
}
int shmem_atomic_fetch_add(int* sym, int value, int pe) {
  return current().atomic_fetch_add32(reinterpret_cast<std::int32_t*>(sym), value, pe);
}
int shmem_atomic_compare_swap(int* sym, int cond, int value, int pe) {
  return current().atomic_compare_swap32(reinterpret_cast<std::int32_t*>(sym),
                                         cond, value, pe);
}

long long shmem_longlong_fadd(long long* sym, long long value, int pe) {
  return shmem_atomic_fetch_add(sym, value, pe);
}
void shmem_longlong_add(long long* sym, long long value, int pe) {
  shmem_atomic_add(sym, value, pe);
}
long long shmem_longlong_finc(long long* sym, int pe) {
  return shmem_atomic_fetch_inc(sym, pe);
}
long long shmem_longlong_cswap(long long* sym, long long cond, long long value,
                               int pe) {
  return shmem_atomic_compare_swap(sym, cond, value, pe);
}
long long shmem_longlong_swap(long long* sym, long long value, int pe) {
  return shmem_atomic_swap(sym, value, pe);
}
int shmem_int_fadd(int* sym, int value, int pe) {
  return shmem_atomic_fetch_add(sym, value, pe);
}

// ---- teams -----------------------------------------------------------------

shmem_team_t shmem_team_world() { return &current().team_world(); }

int shmem_team_split_strided(shmem_team_t parent, int start, int stride,
                             int size, shmem_team_t* new_team) {
  if (parent == SHMEM_TEAM_INVALID || new_team == nullptr) return 1;
  *new_team = current().team_split_strided(*parent, start, stride, size);
  return 0;
}

int shmem_team_my_pe(shmem_team_t team) {
  return team == SHMEM_TEAM_INVALID ? -1 : team->my_pe();
}
int shmem_team_n_pes(shmem_team_t team) {
  return team == SHMEM_TEAM_INVALID ? -1 : team->n_pes();
}
int shmem_team_translate_pe(shmem_team_t src_team, int src_pe,
                            shmem_team_t dst_team) {
  if (src_team == SHMEM_TEAM_INVALID || dst_team == SHMEM_TEAM_INVALID ||
      src_pe < 0 || src_pe >= src_team->n_pes()) {
    return -1;
  }
  return core::Team::translate(*src_team, src_pe, *dst_team);
}
void shmem_team_destroy(shmem_team_t team) { current().team_destroy(team); }
void shmem_team_sync(shmem_team_t team) {
  if (team == SHMEM_TEAM_INVALID) {
    throw core::ShmemError("shmem_team_sync on SHMEM_TEAM_INVALID");
  }
  current().team_sync(*team);
}

// ---- collectives -----------------------------------------------------------

namespace {
core::Team& team_or_throw(shmem_team_t team, const char* what) {
  if (team == SHMEM_TEAM_INVALID) {
    throw core::ShmemError(std::string(what) + " on SHMEM_TEAM_INVALID");
  }
  return *team;
}
}  // namespace

void shmem_broadcastmem(void* dst, const void* src, std::size_t n, int root) {
  current().broadcastmem(dst, src, n, root);
}
void shmem_broadcastmem(shmem_team_t team, void* dst, const void* src,
                        std::size_t n, int root) {
  current().team_broadcast(team_or_throw(team, "shmem_broadcastmem"), dst, src,
                           n, root);
}
void shmem_fcollectmem(void* dst, const void* src, std::size_t nbytes) {
  current().fcollectmem(dst, src, nbytes);
}
void shmem_fcollectmem(shmem_team_t team, void* dst, const void* src,
                       std::size_t nbytes) {
  current().team_fcollect(team_or_throw(team, "shmem_fcollectmem"), dst, src,
                          nbytes);
}
void shmem_alltoallmem(void* dst, const void* src, std::size_t nbytes) {
  current().alltoallmem(dst, src, nbytes);
}
void shmem_alltoallmem(shmem_team_t team, void* dst, const void* src,
                       std::size_t nbytes) {
  current().team_alltoall(team_or_throw(team, "shmem_alltoallmem"), dst, src,
                          nbytes);
}

// The typed reduction surface is mechanical: every (type, op) pair forwards
// to the engine on the world team (to_all) or the given team (reduce).
#define GDRSHMEM_DEFINE_TO_ALL(name, ctype, itype, opk)                       \
  void name(ctype* dst, const ctype* src, std::size_t nreduce) {              \
    current().team_reduce(current().team_world(),                             \
                          reinterpret_cast<itype*>(dst),                      \
                          reinterpret_cast<const itype*>(src), nreduce,       \
                          core::ReduceOp::opk);                               \
  }
#define GDRSHMEM_DEFINE_REDUCE(name, ctype, itype, opk)                       \
  void name(shmem_team_t team, ctype* dst, const ctype* src, std::size_t n) { \
    current().team_reduce(team_or_throw(team, #name),                         \
                          reinterpret_cast<itype*>(dst),                      \
                          reinterpret_cast<const itype*>(src), n,             \
                          core::ReduceOp::opk);                               \
  }

GDRSHMEM_DEFINE_TO_ALL(shmem_int_sum_to_all, int, std::int32_t, kSum)
GDRSHMEM_DEFINE_TO_ALL(shmem_int_min_to_all, int, std::int32_t, kMin)
GDRSHMEM_DEFINE_TO_ALL(shmem_int_max_to_all, int, std::int32_t, kMax)
GDRSHMEM_DEFINE_TO_ALL(shmem_long_sum_to_all, long long, std::int64_t, kSum)
GDRSHMEM_DEFINE_TO_ALL(shmem_long_min_to_all, long long, std::int64_t, kMin)
GDRSHMEM_DEFINE_TO_ALL(shmem_long_max_to_all, long long, std::int64_t, kMax)
GDRSHMEM_DEFINE_TO_ALL(shmem_float_sum_to_all, float, float, kSum)
GDRSHMEM_DEFINE_TO_ALL(shmem_float_min_to_all, float, float, kMin)
GDRSHMEM_DEFINE_TO_ALL(shmem_float_max_to_all, float, float, kMax)
GDRSHMEM_DEFINE_TO_ALL(shmem_double_sum_to_all, double, double, kSum)
GDRSHMEM_DEFINE_TO_ALL(shmem_double_min_to_all, double, double, kMin)
GDRSHMEM_DEFINE_TO_ALL(shmem_double_max_to_all, double, double, kMax)

GDRSHMEM_DEFINE_REDUCE(shmem_int_sum_reduce, int, std::int32_t, kSum)
GDRSHMEM_DEFINE_REDUCE(shmem_int_min_reduce, int, std::int32_t, kMin)
GDRSHMEM_DEFINE_REDUCE(shmem_int_max_reduce, int, std::int32_t, kMax)
GDRSHMEM_DEFINE_REDUCE(shmem_long_sum_reduce, long long, std::int64_t, kSum)
GDRSHMEM_DEFINE_REDUCE(shmem_long_min_reduce, long long, std::int64_t, kMin)
GDRSHMEM_DEFINE_REDUCE(shmem_long_max_reduce, long long, std::int64_t, kMax)
GDRSHMEM_DEFINE_REDUCE(shmem_float_sum_reduce, float, float, kSum)
GDRSHMEM_DEFINE_REDUCE(shmem_float_min_reduce, float, float, kMin)
GDRSHMEM_DEFINE_REDUCE(shmem_float_max_reduce, float, float, kMax)
GDRSHMEM_DEFINE_REDUCE(shmem_double_sum_reduce, double, double, kSum)
GDRSHMEM_DEFINE_REDUCE(shmem_double_min_reduce, double, double, kMin)
GDRSHMEM_DEFINE_REDUCE(shmem_double_max_reduce, double, double, kMax)

#undef GDRSHMEM_DEFINE_TO_ALL
#undef GDRSHMEM_DEFINE_REDUCE

void shmem_longlong_max_to_all(long long* dst, const long long* src, std::size_t n) {
  shmem_long_max_to_all(dst, src, n);
}

}  // namespace gdrshmem::capi
