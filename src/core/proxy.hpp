// Per-node proxy daemon (Section III-C, Fig 5): progresses large-message
// transfers on behalf of every PE on its node, so the *target* PE is never
// involved — preserving true one-sidedness while working around the PCIe
// P2P bottlenecks.
//
// At startup the proxy IPC-maps the GPU heaps of all local PEs (done once,
// at heap creation, avoiding context-switch overheads — III-C). It then
// serves requests FIFO:
//   * kProxyGet: reverse pipeline — IPC cudaMemcpy D->H from the local PE's
//     GPU heap into proxy staging, then RDMA-write chunks to the requester.
//   * kProxyPutReq/kProxyPutFin: the requester streams windows into proxy
//     staging over RDMA; the proxy performs the final H->D IPC copy.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "core/ctrl.hpp"
#include "sim/engine.hpp"
#include "sim/future.hpp"
#include "sim/mailbox.hpp"

namespace gdrshmem::core {

class Runtime;
class Ctx;
struct RmaOp;

/// Shared state of one proxy-put transfer, carried in the control messages.
struct ProxyPutState {
  sim::Completion cts;           // fired when the proxy grants staging
  std::byte* staging = nullptr;  // granted staging window
  std::size_t window = 0;        // window capacity in bytes
  std::uint64_t windows_done = 0;  // windows the proxy has drained to the GPU
  std::shared_ptr<sim::Completion> done =
      std::make_shared<sim::Completion>();  // all bytes at final destination
  int requester = -1;
};

/// Shared state of one proxy-get transfer.
struct ProxyGetState {
  std::shared_ptr<sim::Completion> done = std::make_shared<sim::Completion>();
  int requester = -1;
};

class ProxyDaemon {
 public:
  ProxyDaemon(Runtime& rt, int node, std::size_t staging_bytes = 8u << 20);

  /// Spawn the daemon process (call before Runtime::run starts PEs).
  void start();

  /// Fault injection: kill the daemon mid-service and schedule a restart
  /// after the fault plan's restart delay. In-flight transfers are lost;
  /// requesters detect the stall via their per-stage deadlines and reissue.
  void crash();

  int node() const { return node_; }
  int endpoint() const;
  sim::Mailbox<CtrlMsg>& mailbox() { return mb_; }
  std::size_t staging_bytes() const { return staging_.size(); }

  // Diagnostics.
  std::uint64_t gets_served() const { return gets_served_; }
  std::uint64_t puts_served() const { return puts_served_; }
  std::uint64_t device_cmds_served() const { return device_cmds_served_; }
  int restarts() const { return restarts_; }

 private:
  void serve(sim::Process& self);
  void do_get(sim::Process& self, CtrlMsg& msg);
  void do_put(sim::Process& self, CtrlMsg& req);
  /// Execute one reverse-offload command descriptor (device-initiated op)
  /// on behalf of a local PE's kernel: peer copies intra-node, a single
  /// posting or the staged pipelines inter-node, hardware atomics. Fires
  /// the command's completion through a send back to the requester (the CQ
  /// entry the kernel polls).
  void do_device_cmd(sim::Process& self, CtrlMsg& msg);
  /// The staged pipelines behind oversized device commands (do_get shape,
  /// run at the requester's node).
  void staged_device_put(sim::Process& self, Ctx& rctx, const RmaOp& op);
  void staged_device_get(sim::Process& self, Ctx& rctx, const RmaOp& op);
  void restart();

  Runtime& rt_;
  int node_;
  std::vector<std::byte> staging_;
  sim::Mailbox<CtrlMsg> mb_;
  std::deque<CtrlMsg> stash_;  // messages deferred while a put is active
  sim::Process* proc_ = nullptr;  // live daemon process (null while crashed)
  int restarts_ = 0;
  std::uint64_t gets_served_ = 0;
  std::uint64_t puts_served_ = 0;
  std::uint64_t device_cmds_served_ = 0;
};

}  // namespace gdrshmem::core
