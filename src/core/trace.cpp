#include "core/trace.hpp"

#include <cstdlib>
#include <set>
#include <sstream>
#include <stdexcept>

#include "core/json.hpp"

namespace gdrshmem::core {

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

void Tracer::set_capacity(std::size_t cap) {
  if (cap == 0) cap = 1;
  std::vector<TraceEvent> evs = events();
  if (evs.size() > cap) {
    dropped_ += evs.size() - cap;
    evs.erase(evs.begin(), evs.end() - static_cast<std::ptrdiff_t>(cap));
  }
  capacity_ = cap;
  ring_ = std::move(evs);
  head_ = 0;
}

std::string Tracer::to_csv() const {
  std::ostringstream os;
  os << "pe,kind,target,bytes,protocol,start_us,end_us\n";
  for (const TraceEvent& e : events()) {
    os << e.pe << ',' << to_string(e.kind) << ',' << e.target << ',' << e.bytes
       << ',' << (e.protocol == Protocol::kCount_ ? "?" : to_string(e.protocol))
       << ',' << e.start.to_us() << ',' << e.end.to_us() << '\n';
  }
  return os.str();
}

std::string Tracer::to_chrome_json() const {
  json::Writer w;
  w.begin_object();
  w.field("displayTimeUnit", "ms");
  w.key("traceEvents").begin_array();
  std::set<int> tracks;
  for (const TraceEvent& e : events()) {
    tracks.insert(e.pe);
    w.begin_object();
    bool slice = e.is_op() || e.is_coll();
    w.field("name", to_string(e.kind));
    w.field("cat", e.is_op() ? "op" : e.is_coll() ? "coll" : "fault");
    w.field("ph", slice ? "X" : "i");
    w.field_fixed("ts", e.start.to_us(), 3);  // Chrome ts unit: microseconds
    if (slice) {
      w.field_fixed("dur", (e.end - e.start).to_us(), 3);
    } else {
      w.field("s", "t");  // instant scoped to its thread (PE) track
    }
    w.field("pid", 0);
    w.field("tid", e.pe);
    w.key("args").begin_object();
    if (e.protocol != Protocol::kCount_) {
      w.field("protocol", to_string(e.protocol));
    }
    w.field("bytes", static_cast<std::uint64_t>(e.bytes));
    w.field("target", e.target);
    w.end_object();
    w.end_object();
  }
  // Name the per-PE tracks (service endpoints / nodes show their raw id).
  for (int pe : tracks) {
    w.begin_object();
    w.field("name", "thread_name");
    w.field("ph", "M");
    w.field("pid", 0);
    w.field("tid", pe);
    w.key("args").begin_object();
    w.field("name", "PE " + std::to_string(pe));
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.key("otherData").begin_object();
  w.field("recorded_events", static_cast<std::uint64_t>(size()));
  w.field("dropped_events", dropped_);
  w.end_object();
  w.end_object();
  return w.str() + "\n";
}

bool trace_from_env() {
  const char* v = std::getenv("GDRSHMEM_TRACE");
  if (v == nullptr) return false;
  std::string s(v);
  if (s == "1" || s == "true" || s == "on") return true;
  if (s == "0" || s == "false" || s == "off" || s.empty()) return false;
  throw std::invalid_argument(
      "GDRSHMEM_TRACE: expected 0/1 (or true/false, on/off), got \"" + s + "\"");
}

std::size_t trace_cap_from_env() {
  const char* v = std::getenv("GDRSHMEM_TRACE_CAP");
  if (v == nullptr) return Tracer::kDefaultCapacity;
  char* end = nullptr;
  unsigned long long n = std::strtoull(v, &end, 10);
  if (end == v || *end != '\0' || n == 0) {
    throw std::invalid_argument(
        "GDRSHMEM_TRACE_CAP: expected a positive event count, got \"" +
        std::string(v) + "\"");
  }
  return static_cast<std::size_t>(n);
}

}  // namespace gdrshmem::core
