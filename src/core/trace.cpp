#include "core/trace.hpp"

#include <sstream>

namespace gdrshmem::core {

std::string Tracer::to_csv() const {
  std::ostringstream os;
  os << "pe,kind,target,bytes,protocol,start_us,end_us\n";
  for (const TraceEvent& e : events_) {
    os << e.pe << ',' << to_string(e.kind) << ',' << e.target << ',' << e.bytes
       << ',' << (e.protocol == Protocol::kCount_ ? "?" : to_string(e.protocol))
       << ',' << e.start.to_us() << ',' << e.end.to_us() << '\n';
  }
  return os.str();
}

}  // namespace gdrshmem::core
