// Minimal JSON emitter shared by the observability exporters (Chrome trace,
// machine-readable report) and the bench harness's BENCH_<tag>.json files.
// Fields appear exactly in emission order, so every serializer built on it
// produces byte-stable output for identical inputs — the property the
// golden-file tests and the perf-regression gate rely on.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace gdrshmem::core::json {

class Writer {
 public:
  const std::string& str() const { return out_; }

  Writer& begin_object() { pre_value(); out_ += '{'; return *this; }
  Writer& end_object() { out_ += '}'; return *this; }
  Writer& begin_array() { pre_value(); out_ += '['; return *this; }
  Writer& end_array() { out_ += ']'; return *this; }

  Writer& key(std::string_view k) {
    separate();
    append_string(k);
    out_ += ':';
    after_key_ = true;
    return *this;
  }

  Writer& value(std::string_view s) { pre_value(); append_string(s); return *this; }
  Writer& value(const char* s) { return value(std::string_view(s)); }
  Writer& value(bool b) { pre_value(); out_ += b ? "true" : "false"; return *this; }
  Writer& value(std::int64_t v) {
    pre_value();
    out_ += std::to_string(v);
    return *this;
  }
  Writer& value(std::uint64_t v) {
    pre_value();
    out_ += std::to_string(v);
    return *this;
  }
  Writer& value(int v) { return value(static_cast<std::int64_t>(v)); }
  Writer& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  /// Shortest round-trippable representation.
  Writer& value(double v) {
    pre_value();
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.12g", v);
    out_ += buf;
    return *this;
  }
  /// Fixed-point with `prec` decimals (timestamps, durations).
  Writer& value_fixed(double v, int prec) {
    pre_value();
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.*f", prec, v);
    out_ += buf;
    return *this;
  }

  template <typename T>
  Writer& field(std::string_view k, T v) {
    key(k);
    return value(v);
  }
  Writer& field_fixed(std::string_view k, double v, int prec) {
    key(k);
    return value_fixed(v, prec);
  }

 private:
  // A value needs a separating comma unless it opens the document, follows a
  // key, or is the first element of its container.
  void pre_value() {
    if (after_key_) {
      after_key_ = false;
      return;
    }
    separate();
  }
  void separate() {
    if (!out_.empty() && out_.back() != '{' && out_.back() != '[' &&
        out_.back() != ':') {
      out_ += ',';
    }
  }
  void append_string(std::string_view s) {
    out_ += '"';
    for (char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\t': out_ += "\\t"; break;
        case '\r': out_ += "\\r"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  bool after_key_ = false;
};

}  // namespace gdrshmem::core::json
