// Cluster topology model: nodes with sockets, GPUs, HCAs, and the
// bandwidth-contended links between them, plus path builders that encode
// which hardware segments each kind of transfer crosses.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "hw/params.hpp"
#include "sim/link.hpp"
#include "sim/time.hpp"

namespace gdrshmem::hw {

/// Direction of a PCIe peer-to-peer access from the HCA's point of view.
enum class P2pDir { kRead, kWrite };

struct GpuDevice {
  int node = 0;
  int index = 0;   // index within the node
  int socket = 0;
  std::unique_ptr<sim::Link> pcie;  // the GPU's PCIe x16 slot

  GpuDevice(int node_, int index_, int socket_, double bw)
      : node(node_), index(index_), socket(socket_),
        pcie(std::make_unique<sim::Link>(
            "node" + std::to_string(node_) + ".gpu" + std::to_string(index_) + ".pcie",
            bw)) {}
};

struct HcaDevice {
  int node = 0;
  int index = 0;
  int socket = 0;
  std::unique_ptr<sim::Link> pcie;  // HCA's PCIe slot
  std::unique_ptr<sim::Link> port;  // IB port into the fabric

  HcaDevice(int node_, int index_, int socket_, double pcie_bw, double port_bw)
      : node(node_), index(index_), socket(socket_),
        pcie(std::make_unique<sim::Link>(
            "node" + std::to_string(node_) + ".hca" + std::to_string(index_) + ".pcie",
            pcie_bw)),
        port(std::make_unique<sim::Link>(
            "node" + std::to_string(node_) + ".hca" + std::to_string(index_) + ".port",
            port_bw)) {}
};

struct NodeModel {
  int id = 0;
  int sockets = 2;
  std::vector<GpuDevice> gpus;
  std::vector<HcaDevice> hcas;
  std::unique_ptr<sim::Link> host_mem;  // host memory controller
  /// PCIe peer-to-peer (GPUDirect) capability. Fault injection can revoke it
  /// at runtime; transports must then route through host-staged protocols.
  bool p2p_available = true;
};

struct ClusterConfig {
  int num_nodes = 2;
  int pes_per_node = 1;
  int gpus_per_node = 2;
  int hcas_per_node = 2;
  int sockets_per_node = 2;
  /// If false, PEs are forced onto an HCA on the *other* socket from their
  /// GPU, exposing the severe Table III inter-socket P2P bottleneck.
  bool hca_gpu_same_socket = true;
  SystemParams params;
};

/// Placement of one PE on the cluster.
struct PePlacement {
  int node = 0;
  int local_rank = 0;  // rank within the node
  int gpu = 0;         // GPU index within the node
  int hca = 0;         // HCA index within the node
  int socket = 0;      // socket the PE (and its GPU) lives on
};

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& cfg);

  const ClusterConfig& config() const { return cfg_; }
  const SystemParams& params() const { return cfg_.params; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_pes() const { return cfg_.num_nodes * cfg_.pes_per_node; }
  NodeModel& node(int id) { return *nodes_.at(id); }
  const NodeModel& node(int id) const { return *nodes_.at(id); }

  /// Deterministic PE -> (node, gpu, hca, socket) placement. Ids in
  /// [num_pes, num_pes + num_nodes) are *service endpoints* — one per node,
  /// used by proxy daemons — pinned to HCA 0 with local_rank = -1.
  PePlacement placement(int pe) const;
  /// Endpoint id of node `n`'s service (proxy) endpoint.
  int service_endpoint(int n) const { return num_pes() + n; }
  bool same_node(int pe_a, int pe_b) const {
    return placement(pe_a).node == placement(pe_b).node;
  }

  /// Whether GPUDirect P2P DMA is currently usable on `node_id`.
  bool p2p_available(int node_id) const { return node(node_id).p2p_available; }
  /// Withdraw (or restore) P2P capability on a node; the decision points in
  /// the transports consult this before choosing a GDR protocol.
  void set_p2p_available(int node_id, bool ok) {
    node(node_id).p2p_available = ok;
  }

  // ---- path builders -----------------------------------------------------
  // Each returns the latency / effective bandwidth / occupied links for one
  // hardware transfer segment. Segments compose with sim::combine().

  /// Process-to-process copy through host shared memory on `node`.
  sim::Path host_copy(int node_id);
  /// cudaMemcpy host -> device.
  sim::Path cuda_h2d(int node_id, int gpu);
  /// cudaMemcpy device -> host.
  sim::Path cuda_d2h(int node_id, int gpu);
  /// cudaMemcpy device -> device (same or peer GPU, CUDA IPC path).
  sim::Path cuda_d2d(int node_id, int src_gpu, int dst_gpu);
  /// HCA DMA to/from host memory (the host leg of any RDMA).
  sim::Path hca_host(int node_id, int hca);
  /// HCA DMA to/from GPU memory over PCIe P2P — the GPUDirect RDMA leg.
  /// Bandwidth depends on direction and on HCA/GPU socket locality
  /// (Table III).
  sim::Path gdr_leg(int node_id, int hca, int gpu, P2pDir dir);
  /// The network between two HCAs. Same-node = adapter loopback (no wire).
  sim::Path wire(int src_node, int src_hca, int dst_node, int dst_hca);

 private:
  ClusterConfig cfg_;
  std::vector<std::unique_ptr<NodeModel>> nodes_;
};

}  // namespace gdrshmem::hw
