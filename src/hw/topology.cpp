#include "hw/topology.hpp"

namespace gdrshmem::hw {

using sim::Duration;
using sim::Path;

Cluster::Cluster(const ClusterConfig& cfg) : cfg_(cfg) {
  if (cfg.num_nodes < 1 || cfg.pes_per_node < 1) {
    throw std::invalid_argument("cluster needs >=1 node and >=1 PE per node");
  }
  if (cfg.gpus_per_node < 1 || cfg.hcas_per_node < 1 || cfg.sockets_per_node < 1) {
    throw std::invalid_argument("cluster needs >=1 GPU, HCA and socket per node");
  }
  const SystemParams& p = cfg.params;
  nodes_.reserve(static_cast<std::size_t>(cfg.num_nodes));
  for (int n = 0; n < cfg.num_nodes; ++n) {
    auto node = std::make_unique<NodeModel>();
    node->id = n;
    node->sockets = cfg.sockets_per_node;
    for (int g = 0; g < cfg.gpus_per_node; ++g) {
      node->gpus.emplace_back(n, g, g % cfg.sockets_per_node, p.pcie_h2d_bw_mbps);
    }
    for (int h = 0; h < cfg.hcas_per_node; ++h) {
      node->hcas.emplace_back(n, h, h % cfg.sockets_per_node,
                              p.hca_host_dma_bw_mbps, p.ib_bandwidth_mbps);
    }
    node->host_mem = std::make_unique<sim::Link>(
        "node" + std::to_string(n) + ".mem", p.host_memcpy_bw_mbps);
    nodes_.push_back(std::move(node));
  }
}

PePlacement Cluster::placement(int pe) const {
  if (pe < 0 || pe >= num_pes() + num_nodes()) {
    throw std::out_of_range("PE id out of range");
  }
  if (pe >= num_pes()) {
    // Service endpoint (per-node proxy daemon): pinned to HCA 0 / GPU 0's
    // socket on its node, with no local rank.
    PePlacement pl;
    pl.node = pe - num_pes();
    pl.local_rank = -1;
    pl.gpu = 0;
    pl.hca = 0;
    pl.socket = node(pl.node).hcas[0].socket;
    return pl;
  }
  PePlacement pl;
  pl.node = pe / cfg_.pes_per_node;
  pl.local_rank = pe % cfg_.pes_per_node;
  pl.gpu = pl.local_rank % cfg_.gpus_per_node;
  pl.socket = node(pl.node).gpus[static_cast<std::size_t>(pl.gpu)].socket;
  if (cfg_.hca_gpu_same_socket) {
    // Prefer an HCA on the same socket as the PE's GPU.
    pl.hca = 0;
    for (int h = 0; h < cfg_.hcas_per_node; ++h) {
      if (node(pl.node).hcas[static_cast<std::size_t>(h)].socket == pl.socket) {
        pl.hca = h;
        break;
      }
    }
  } else {
    // Deliberately pick an HCA on a different socket if one exists.
    pl.hca = 0;
    for (int h = 0; h < cfg_.hcas_per_node; ++h) {
      if (node(pl.node).hcas[static_cast<std::size_t>(h)].socket != pl.socket) {
        pl.hca = h;
        break;
      }
    }
  }
  return pl;
}

Path Cluster::host_copy(int node_id) {
  const SystemParams& p = params();
  NodeModel& n = node(node_id);
  return Path{Duration::us(p.host_memcpy_overhead_us), p.host_memcpy_bw_mbps,
              {n.host_mem.get()}};
}

Path Cluster::cuda_h2d(int node_id, int gpu) {
  const SystemParams& p = params();
  NodeModel& n = node(node_id);
  // DMA engines do not saturate the memory controller: only the GPU's PCIe
  // slot is a contended resource for host<->device copies.
  return Path{Duration::us(p.cuda_copy_launch_us + p.pcie_hop_latency_us),
              p.pcie_h2d_bw_mbps,
              {n.gpus.at(static_cast<std::size_t>(gpu)).pcie.get()}};
}

Path Cluster::cuda_d2h(int node_id, int gpu) {
  const SystemParams& p = params();
  NodeModel& n = node(node_id);
  return Path{Duration::us(p.cuda_copy_launch_us + p.pcie_hop_latency_us),
              p.pcie_d2h_bw_mbps,
              {n.gpus.at(static_cast<std::size_t>(gpu)).pcie.get()}};
}

Path Cluster::cuda_d2d(int node_id, int src_gpu, int dst_gpu) {
  const SystemParams& p = params();
  NodeModel& n = node(node_id);
  GpuDevice& src = n.gpus.at(static_cast<std::size_t>(src_gpu));
  GpuDevice& dst = n.gpus.at(static_cast<std::size_t>(dst_gpu));
  if (src_gpu == dst_gpu) {
    // Device-local copy: no PCIe traversal, only the copy-engine launch.
    return Path{Duration::us(p.cuda_copy_launch_us), p.gpu_local_copy_bw_mbps, {}};
  }
  double hop = p.cuda_copy_launch_us + 2 * p.pcie_hop_latency_us;
  if (src.socket != dst.socket) hop += p.qpi_hop_latency_us;
  return Path{Duration::us(hop), p.pcie_gpu_peer_bw_mbps,
              {src.pcie.get(), dst.pcie.get()}};
}

Path Cluster::hca_host(int node_id, int hca) {
  const SystemParams& p = params();
  NodeModel& n = node(node_id);
  return Path{Duration::us(p.pcie_hop_latency_us), p.hca_host_dma_bw_mbps,
              {n.hcas.at(static_cast<std::size_t>(hca)).pcie.get()}};
}

Path Cluster::gdr_leg(int node_id, int hca, int gpu, P2pDir dir) {
  const SystemParams& p = params();
  NodeModel& n = node(node_id);
  HcaDevice& h = n.hcas.at(static_cast<std::size_t>(hca));
  GpuDevice& g = n.gpus.at(static_cast<std::size_t>(gpu));
  bool intra_socket = (h.socket == g.socket);
  double bw = 0;
  switch (dir) {
    case P2pDir::kRead:
      bw = intra_socket ? p.p2p_read_intra_socket_bw_mbps
                        : p.p2p_read_inter_socket_bw_mbps;
      break;
    case P2pDir::kWrite:
      bw = intra_socket ? p.p2p_write_intra_socket_bw_mbps
                        : p.p2p_write_inter_socket_bw_mbps;
      break;
  }
  double lat = p.gdr_hop_latency_us + (intra_socket ? 0.0 : p.qpi_hop_latency_us);
  return Path{Duration::us(lat), bw, {h.pcie.get(), g.pcie.get()}};
}

Path Cluster::wire(int src_node, int src_hca, int dst_node, int dst_hca) {
  const SystemParams& p = params();
  HcaDevice& s = node(src_node).hcas.at(static_cast<std::size_t>(src_hca));
  HcaDevice& d = node(dst_node).hcas.at(static_cast<std::size_t>(dst_hca));
  if (src_node == dst_node) {
    // Adapter loopback: the message turns around inside the HCA (or between
    // two HCAs through the local switch port pair); charge HCA processing
    // only — callers add the DMA legs.
    return Path{Duration::us(2 * p.hca_processing_us), p.ib_bandwidth_mbps,
                {s.port.get()}};
  }
  double lat = 2 * p.hca_processing_us + 2 * p.wire_latency_us + p.switch_latency_us;
  return Path{Duration::us(lat), p.ib_bandwidth_mbps, {s.port.get(), d.port.get()}};
}

}  // namespace gdrshmem::hw
