// The hardware cost model: every latency/bandwidth constant the simulated
// cluster charges, in one tunable struct.
//
// Defaults are calibrated against the paper's published measurements on the
// Wilkes cluster (dual-socket IvyBridge, 2x Tesla K20, 2x FDR IB per node):
//   * Table III  — PCIe P2P read/write bandwidth, intra vs inter socket
//   * Table II   — 4 B put latency at IB and OpenSHMEM level
//   * Fig 6-9    — put/get latency curves for every configuration
// See EXPERIMENTS.md for the calibration evidence.
#pragma once

#include <cstddef>

namespace gdrshmem::hw {

struct SystemParams {
  // ---- PCIe fabric ----------------------------------------------------
  /// cudaMemcpy DMA bandwidth between host memory and a GPU (MB/s).
  double pcie_h2d_bw_mbps = 10000.0;
  double pcie_d2h_bw_mbps = 10000.0;
  /// Device-local copy bandwidth (src and dst on the same GPU).
  double gpu_local_copy_bw_mbps = 150000.0;
  /// CUDA IPC copy between two GPUs through the PCIe root complex.
  double pcie_gpu_peer_bw_mbps = 9000.0;

  /// PCIe peer-to-peer (HCA <-> GPU) bandwidth, Table III of the paper.
  double p2p_read_intra_socket_bw_mbps = 3421.0;
  double p2p_read_inter_socket_bw_mbps = 247.0;
  double p2p_write_intra_socket_bw_mbps = 6396.0;
  double p2p_write_inter_socket_bw_mbps = 1179.0;

  /// One PCIe traversal (root complex hop) and the extra QPI/socket hop.
  double pcie_hop_latency_us = 0.25;
  /// A P2P access into GPU BAR memory is slower than a host DMA hop.
  double gdr_hop_latency_us = 0.55;
  double qpi_hop_latency_us = 0.35;

  // ---- CUDA runtime ----------------------------------------------------
  /// Driver + copy-engine launch overhead charged by every cudaMemcpy.
  double cuda_copy_launch_us = 5.4;
  /// Kernel launch overhead.
  double cuda_kernel_launch_us = 6.0;
  /// One-time cost of cudaIpcOpenMemHandle (mapping a peer allocation).
  double cuda_ipc_open_us = 85.0;

  // ---- reduction combine cost -------------------------------------------
  /// Host-side elementwise combine (the collectives engine's CPU pass).
  double cpu_reduce_ns_per_byte = 0.25;
  /// Device-side combine rate; charged through the kernel-launch model
  /// (cuda_kernel_launch_us + bytes * this), so small GPU combines pay the
  /// realistic launch overhead.
  double gpu_reduce_ns_per_byte = 0.04;

  // ---- InfiniBand ------------------------------------------------------
  /// FDR 4x link bandwidth as measured by the paper (MB/s).
  double ib_bandwidth_mbps = 6397.0;
  /// HCA DMA bandwidth to/from host memory (not the bottleneck on Wilkes).
  double hca_host_dma_bw_mbps = 11000.0;
  /// Software cost to post a work request (write descriptor + doorbell).
  double ib_post_overhead_us = 0.30;
  /// Per-HCA processing of a work request / incoming packet.
  double hca_processing_us = 0.20;
  /// Cable propagation + port traversal (one direction, one cable).
  double wire_latency_us = 0.15;
  /// Switch crossing.
  double switch_latency_us = 0.10;
  /// Extra execution time of an IB hardware atomic at the target HCA.
  double ib_atomic_exec_us = 0.40;
  /// Delay between a completion landing and the polling CPU noticing.
  double completion_poll_us = 0.10;

  // ---- InfiniBand reliability (tier-1, HCA-transparent) -------------------
  // RC QPs retransmit a failed WQE in hardware before surfacing a
  // completion error; these model that retry envelope. Only consulted when
  // a fault plan is active — a healthy fabric never draws on them.
  /// Retransmit attempts before the CQ reports an error (IB retry_cnt).
  int ib_retry_count = 7;
  /// Base retransmit timeout; doubles per attempt (IB timeout encoding).
  double ib_retry_timeout_us = 12.0;
  /// Cap on the per-attempt retransmit timeout growth.
  double ib_retry_timeout_cap_us = 800.0;

  // ---- Memory registration ----------------------------------------------
  double mr_register_base_us = 55.0;
  double mr_register_per_mb_us = 90.0;
  /// Dynamically registered ranges the registration cache retains per PE
  /// before evicting the least-recently-used one (init-time registrations —
  /// heaps, eager slots, staging pools — are pinned and never evicted).
  /// 0 disables the bound (the pre-bounded unbounded behavior).
  std::size_t mr_cache_capacity = 128;

  // ---- Queue-pair transports (RC / UD / DC, SRQ, multi-rail) --------------
  // Connection-state model behind the ib::Transport endpoint API. The RC
  // mesh needs one QP per peer per PE, so its HCA-resident context set
  // outgrows the adapter's on-die QP cache at scale; UD needs one datagram
  // QP total; DC needs a small initiator pool plus one target (DCT).
  /// QP contexts the HCA caches on-die before it must fetch them from host
  /// memory (ConnectX-3-era ICM cache, in entries).
  int hca_qp_cache_entries = 2048;
  /// Extra per-op cost when the working set of connected QPs overflows the
  /// on-die cache (context fetch over PCIe), scaled by the overflow ratio.
  double hca_qp_cache_miss_us = 1.2;
  /// Host/HCA memory pinned per QP: the context itself plus the send ring.
  std::size_t ib_qp_context_bytes = 320;
  std::size_t ib_qp_ring_bytes = 8192;
  /// Per-QP receive buffering when each QP posts its own receives.
  std::size_t ib_recv_ring_bytes = 16384;
  /// One shared receive queue per endpoint (replaces per-QP recv rings for
  /// UD/DC, optional for RC).
  std::size_t ib_srq_bytes = 262144;
  /// UD datagram payload limit (one MTU; larger sends are rejected, RMA is
  /// segmented in software).
  std::size_t ud_mtu_bytes = 4096;
  /// Per-datagram software/header cost the UD path pays on top of the wire
  /// (header build + SRQ consume at the target).
  double ud_packet_overhead_us = 0.25;
  /// DC initiators (DCIs) pooled per endpoint; targeting a peer not among
  /// the initiators' current targets pays the reconnect handshake below.
  int dc_initiator_pool = 8;
  double dc_reconnect_us = 0.4;
  /// Messages at or above this size stripe across both rails (HCAs) when
  /// GDRSHMEM_IB_RAILS=2.
  std::size_t rail_stripe_min_bytes = 256 * 1024;

  // ---- SRD relaxed-ordering transport -------------------------------------
  // EFA/SRD-style fabric: every RMA op is segmented into MTU-sized packets
  // individually sprayed across rails/paths, so segments arrive out of order
  // and a target-side reorder/tracking buffer detects op completion. The
  // reordering is drawn deterministically from the run seed
  // (GDRSHMEM_IB_SRD_SEED), so every run is bit-identical per seed.
  /// SRD segment payload limit (EFA-like MTU).
  std::size_t srd_mtu_bytes = 8192;
  /// Per-segment software/header cost at the source (WQE build + path
  /// selection); cheaper than ud_packet_overhead_us — no per-datagram SRQ
  /// consume, the reorder buffer absorbs arrivals.
  double srd_segment_overhead_us = 0.12;
  /// Width of the per-segment delivery jitter window: each inter-node
  /// segment's arrival is deferred by uniform [0, this) us past the path's
  /// deterministic schedule. 0 disables jitter (in-order srd, for A/B
  /// isolation). Overridable via GDRSHMEM_IB_SRD_JITTER_US.
  double srd_jitter_window_us = 1.5;
  /// Reorder-buffer tracking entry per in-flight segment at the target
  /// (sequence bookkeeping only — payloads land in place on arrival).
  std::size_t srd_reorder_entry_bytes = 64;
  /// Reorder-buffer entries provisioned per endpoint (footprint model).
  int srd_reorder_entries = 1024;

  // ---- Host-side software -----------------------------------------------
  /// Shared-memory (process-to-process, same node) copy bandwidth.
  double host_memcpy_bw_mbps = 11000.0;
  double host_memcpy_overhead_us = 0.20;
  /// OpenSHMEM bookkeeping charged per API call (address translation,
  /// descriptor lookup).
  double shmem_sw_overhead_us = 0.15;
  /// Latency for an idle PE inside the progress engine to notice and start
  /// servicing an incoming runtime request (per control message).
  double progress_wakeup_us = 2.5;

  // ---- Pipelining -------------------------------------------------------
  /// Chunk size used by the host-based pipeline and pipeline-GDR-write
  /// protocols (bytes).
  std::size_t pipeline_chunk_bytes = 256 * 1024;

  // ---- Device-initiated communication ------------------------------------
  // Costs of issuing OpenSHMEM operations from inside a running kernel
  // (NVSHMEM/ROC_SHMEM-style). The GPU-IB backend pays a WQE build plus a
  // doorbell ring per operation; the reverse-offload backend pays one
  // host-visible descriptor write and lets the proxy absorb the posting cost.
  /// A single GPU thread assembling a work-queue entry in registers/shared
  /// memory and writing it to the QP buffer (BAR or host-pinned).
  double gpu_wqe_build_us = 0.9;
  /// MMIO doorbell ring across PCIe from the GPU to the HCA.
  double gpu_doorbell_us = 1.1;
  /// Polling the completion queue from device code (one CQE read across
  /// the BAR) — charged by device-side quiet.
  double gpu_cq_poll_us = 0.5;
  /// One command descriptor written to the host-visible ring that the
  /// reverse-offload proxy polls (write-combined PCIe store + flag flip).
  double device_cmd_write_us = 0.4;
  /// Cooperative WQE assembly amortizes the build cost across lanes:
  /// warp-scope issues divide gpu_wqe_build_us by this...
  double wqe_warp_divisor = 4.0;
  /// ...and block-scope issues by this (doorbell cost is never divided —
  /// the ring itself is one MMIO store regardless of scope).
  double wqe_block_divisor = 8.0;

  // ---- GPU compute model -------------------------------------------------
  /// Per-lattice-cell update cost used by the application kernels (ns).
  /// Stencil2D and LBM override this per app; see src/apps.
  double gpu_cell_update_ns = 0.9;

  /// Wilkes-like defaults (what the paper evaluated on).
  static SystemParams wilkes() { return SystemParams{}; }
};

}  // namespace gdrshmem::hw
