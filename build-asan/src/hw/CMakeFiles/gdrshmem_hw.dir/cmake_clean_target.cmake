file(REMOVE_RECURSE
  "libgdrshmem_hw.a"
)
