# Empty dependencies file for gdrshmem_hw.
# This may be replaced when dependencies are built.
