file(REMOVE_RECURSE
  "CMakeFiles/gdrshmem_hw.dir/topology.cpp.o"
  "CMakeFiles/gdrshmem_hw.dir/topology.cpp.o.d"
  "libgdrshmem_hw.a"
  "libgdrshmem_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdrshmem_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
