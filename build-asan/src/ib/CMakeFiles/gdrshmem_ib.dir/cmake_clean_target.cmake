file(REMOVE_RECURSE
  "libgdrshmem_ib.a"
)
