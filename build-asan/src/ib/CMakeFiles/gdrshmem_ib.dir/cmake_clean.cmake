file(REMOVE_RECURSE
  "CMakeFiles/gdrshmem_ib.dir/verbs.cpp.o"
  "CMakeFiles/gdrshmem_ib.dir/verbs.cpp.o.d"
  "libgdrshmem_ib.a"
  "libgdrshmem_ib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdrshmem_ib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
