# Empty dependencies file for gdrshmem_ib.
# This may be replaced when dependencies are built.
