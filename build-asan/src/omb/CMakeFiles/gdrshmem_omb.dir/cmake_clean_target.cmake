file(REMOVE_RECURSE
  "libgdrshmem_omb.a"
)
