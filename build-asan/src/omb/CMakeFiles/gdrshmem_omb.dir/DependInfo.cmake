
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/omb/omb.cpp" "src/omb/CMakeFiles/gdrshmem_omb.dir/omb.cpp.o" "gcc" "src/omb/CMakeFiles/gdrshmem_omb.dir/omb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/core/CMakeFiles/gdrshmem_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/ib/CMakeFiles/gdrshmem_ib.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/cudart/CMakeFiles/gdrshmem_cudart.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/hw/CMakeFiles/gdrshmem_hw.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/gdrshmem_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
