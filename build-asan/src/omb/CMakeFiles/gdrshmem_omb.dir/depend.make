# Empty dependencies file for gdrshmem_omb.
# This may be replaced when dependencies are built.
