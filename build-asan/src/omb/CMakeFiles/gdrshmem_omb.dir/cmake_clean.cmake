file(REMOVE_RECURSE
  "CMakeFiles/gdrshmem_omb.dir/omb.cpp.o"
  "CMakeFiles/gdrshmem_omb.dir/omb.cpp.o.d"
  "libgdrshmem_omb.a"
  "libgdrshmem_omb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdrshmem_omb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
