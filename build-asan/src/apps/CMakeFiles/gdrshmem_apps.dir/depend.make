# Empty dependencies file for gdrshmem_apps.
# This may be replaced when dependencies are built.
