file(REMOVE_RECURSE
  "CMakeFiles/gdrshmem_apps.dir/lbm.cpp.o"
  "CMakeFiles/gdrshmem_apps.dir/lbm.cpp.o.d"
  "CMakeFiles/gdrshmem_apps.dir/stencil2d.cpp.o"
  "CMakeFiles/gdrshmem_apps.dir/stencil2d.cpp.o.d"
  "libgdrshmem_apps.a"
  "libgdrshmem_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdrshmem_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
