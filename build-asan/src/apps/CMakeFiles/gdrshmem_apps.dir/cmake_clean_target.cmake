file(REMOVE_RECURSE
  "libgdrshmem_apps.a"
)
