file(REMOVE_RECURSE
  "CMakeFiles/gdrshmem_cudart.dir/cudart.cpp.o"
  "CMakeFiles/gdrshmem_cudart.dir/cudart.cpp.o.d"
  "libgdrshmem_cudart.a"
  "libgdrshmem_cudart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdrshmem_cudart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
