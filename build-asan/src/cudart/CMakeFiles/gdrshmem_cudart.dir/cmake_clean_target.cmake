file(REMOVE_RECURSE
  "libgdrshmem_cudart.a"
)
