# Empty dependencies file for gdrshmem_cudart.
# This may be replaced when dependencies are built.
