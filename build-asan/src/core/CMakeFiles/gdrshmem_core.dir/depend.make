# Empty dependencies file for gdrshmem_core.
# This may be replaced when dependencies are built.
