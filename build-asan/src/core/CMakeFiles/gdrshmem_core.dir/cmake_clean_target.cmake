file(REMOVE_RECURSE
  "libgdrshmem_core.a"
)
