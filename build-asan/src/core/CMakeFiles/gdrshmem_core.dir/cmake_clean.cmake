file(REMOVE_RECURSE
  "CMakeFiles/gdrshmem_core.dir/atomics.cpp.o"
  "CMakeFiles/gdrshmem_core.dir/atomics.cpp.o.d"
  "CMakeFiles/gdrshmem_core.dir/ctx.cpp.o"
  "CMakeFiles/gdrshmem_core.dir/ctx.cpp.o.d"
  "CMakeFiles/gdrshmem_core.dir/enhanced_gdr.cpp.o"
  "CMakeFiles/gdrshmem_core.dir/enhanced_gdr.cpp.o.d"
  "CMakeFiles/gdrshmem_core.dir/host_pipeline.cpp.o"
  "CMakeFiles/gdrshmem_core.dir/host_pipeline.cpp.o.d"
  "CMakeFiles/gdrshmem_core.dir/lock.cpp.o"
  "CMakeFiles/gdrshmem_core.dir/lock.cpp.o.d"
  "CMakeFiles/gdrshmem_core.dir/naive.cpp.o"
  "CMakeFiles/gdrshmem_core.dir/naive.cpp.o.d"
  "CMakeFiles/gdrshmem_core.dir/proxy.cpp.o"
  "CMakeFiles/gdrshmem_core.dir/proxy.cpp.o.d"
  "CMakeFiles/gdrshmem_core.dir/report.cpp.o"
  "CMakeFiles/gdrshmem_core.dir/report.cpp.o.d"
  "CMakeFiles/gdrshmem_core.dir/runtime.cpp.o"
  "CMakeFiles/gdrshmem_core.dir/runtime.cpp.o.d"
  "CMakeFiles/gdrshmem_core.dir/shmem_api.cpp.o"
  "CMakeFiles/gdrshmem_core.dir/shmem_api.cpp.o.d"
  "CMakeFiles/gdrshmem_core.dir/trace.cpp.o"
  "CMakeFiles/gdrshmem_core.dir/trace.cpp.o.d"
  "libgdrshmem_core.a"
  "libgdrshmem_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdrshmem_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
