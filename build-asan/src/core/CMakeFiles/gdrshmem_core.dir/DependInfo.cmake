
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/atomics.cpp" "src/core/CMakeFiles/gdrshmem_core.dir/atomics.cpp.o" "gcc" "src/core/CMakeFiles/gdrshmem_core.dir/atomics.cpp.o.d"
  "/root/repo/src/core/ctx.cpp" "src/core/CMakeFiles/gdrshmem_core.dir/ctx.cpp.o" "gcc" "src/core/CMakeFiles/gdrshmem_core.dir/ctx.cpp.o.d"
  "/root/repo/src/core/enhanced_gdr.cpp" "src/core/CMakeFiles/gdrshmem_core.dir/enhanced_gdr.cpp.o" "gcc" "src/core/CMakeFiles/gdrshmem_core.dir/enhanced_gdr.cpp.o.d"
  "/root/repo/src/core/host_pipeline.cpp" "src/core/CMakeFiles/gdrshmem_core.dir/host_pipeline.cpp.o" "gcc" "src/core/CMakeFiles/gdrshmem_core.dir/host_pipeline.cpp.o.d"
  "/root/repo/src/core/lock.cpp" "src/core/CMakeFiles/gdrshmem_core.dir/lock.cpp.o" "gcc" "src/core/CMakeFiles/gdrshmem_core.dir/lock.cpp.o.d"
  "/root/repo/src/core/naive.cpp" "src/core/CMakeFiles/gdrshmem_core.dir/naive.cpp.o" "gcc" "src/core/CMakeFiles/gdrshmem_core.dir/naive.cpp.o.d"
  "/root/repo/src/core/proxy.cpp" "src/core/CMakeFiles/gdrshmem_core.dir/proxy.cpp.o" "gcc" "src/core/CMakeFiles/gdrshmem_core.dir/proxy.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/gdrshmem_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/gdrshmem_core.dir/report.cpp.o.d"
  "/root/repo/src/core/runtime.cpp" "src/core/CMakeFiles/gdrshmem_core.dir/runtime.cpp.o" "gcc" "src/core/CMakeFiles/gdrshmem_core.dir/runtime.cpp.o.d"
  "/root/repo/src/core/shmem_api.cpp" "src/core/CMakeFiles/gdrshmem_core.dir/shmem_api.cpp.o" "gcc" "src/core/CMakeFiles/gdrshmem_core.dir/shmem_api.cpp.o.d"
  "/root/repo/src/core/trace.cpp" "src/core/CMakeFiles/gdrshmem_core.dir/trace.cpp.o" "gcc" "src/core/CMakeFiles/gdrshmem_core.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/ib/CMakeFiles/gdrshmem_ib.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/cudart/CMakeFiles/gdrshmem_cudart.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/hw/CMakeFiles/gdrshmem_hw.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/gdrshmem_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
