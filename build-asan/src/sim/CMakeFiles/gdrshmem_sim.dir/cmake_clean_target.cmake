file(REMOVE_RECURSE
  "libgdrshmem_sim.a"
)
