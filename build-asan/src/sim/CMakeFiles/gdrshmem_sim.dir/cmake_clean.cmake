file(REMOVE_RECURSE
  "CMakeFiles/gdrshmem_sim.dir/engine.cpp.o"
  "CMakeFiles/gdrshmem_sim.dir/engine.cpp.o.d"
  "CMakeFiles/gdrshmem_sim.dir/exec_fiber.cpp.o"
  "CMakeFiles/gdrshmem_sim.dir/exec_fiber.cpp.o.d"
  "CMakeFiles/gdrshmem_sim.dir/exec_thread.cpp.o"
  "CMakeFiles/gdrshmem_sim.dir/exec_thread.cpp.o.d"
  "libgdrshmem_sim.a"
  "libgdrshmem_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdrshmem_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
