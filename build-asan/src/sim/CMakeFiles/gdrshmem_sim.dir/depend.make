# Empty dependencies file for gdrshmem_sim.
# This may be replaced when dependencies are built.
