# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-asan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/test_sim[1]_include.cmake")
include("/root/repo/build-asan/tests/test_hw[1]_include.cmake")
include("/root/repo/build-asan/tests/test_cudart[1]_include.cmake")
include("/root/repo/build-asan/tests/test_ib[1]_include.cmake")
include("/root/repo/build-asan/tests/test_core[1]_include.cmake")
include("/root/repo/build-asan/tests/test_omb[1]_include.cmake")
include("/root/repo/build-asan/tests/test_apps[1]_include.cmake")
