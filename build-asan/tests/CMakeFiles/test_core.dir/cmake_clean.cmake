file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/atomics_test.cpp.o"
  "CMakeFiles/test_core.dir/core/atomics_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/determinism_test.cpp.o"
  "CMakeFiles/test_core.dir/core/determinism_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/extended_api_test.cpp.o"
  "CMakeFiles/test_core.dir/core/extended_api_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/lock_test.cpp.o"
  "CMakeFiles/test_core.dir/core/lock_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/overlap_test.cpp.o"
  "CMakeFiles/test_core.dir/core/overlap_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/property_test.cpp.o"
  "CMakeFiles/test_core.dir/core/property_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/protocol_test.cpp.o"
  "CMakeFiles/test_core.dir/core/protocol_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/report_test.cpp.o"
  "CMakeFiles/test_core.dir/core/report_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/rma_matrix_test.cpp.o"
  "CMakeFiles/test_core.dir/core/rma_matrix_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/runtime_test.cpp.o"
  "CMakeFiles/test_core.dir/core/runtime_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/service_thread_test.cpp.o"
  "CMakeFiles/test_core.dir/core/service_thread_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/sync_test.cpp.o"
  "CMakeFiles/test_core.dir/core/sync_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/trace_test.cpp.o"
  "CMakeFiles/test_core.dir/core/trace_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
