
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/atomics_test.cpp" "tests/CMakeFiles/test_core.dir/core/atomics_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/atomics_test.cpp.o.d"
  "/root/repo/tests/core/determinism_test.cpp" "tests/CMakeFiles/test_core.dir/core/determinism_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/determinism_test.cpp.o.d"
  "/root/repo/tests/core/extended_api_test.cpp" "tests/CMakeFiles/test_core.dir/core/extended_api_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/extended_api_test.cpp.o.d"
  "/root/repo/tests/core/lock_test.cpp" "tests/CMakeFiles/test_core.dir/core/lock_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/lock_test.cpp.o.d"
  "/root/repo/tests/core/overlap_test.cpp" "tests/CMakeFiles/test_core.dir/core/overlap_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/overlap_test.cpp.o.d"
  "/root/repo/tests/core/property_test.cpp" "tests/CMakeFiles/test_core.dir/core/property_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/property_test.cpp.o.d"
  "/root/repo/tests/core/protocol_test.cpp" "tests/CMakeFiles/test_core.dir/core/protocol_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/protocol_test.cpp.o.d"
  "/root/repo/tests/core/report_test.cpp" "tests/CMakeFiles/test_core.dir/core/report_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/report_test.cpp.o.d"
  "/root/repo/tests/core/rma_matrix_test.cpp" "tests/CMakeFiles/test_core.dir/core/rma_matrix_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/rma_matrix_test.cpp.o.d"
  "/root/repo/tests/core/runtime_test.cpp" "tests/CMakeFiles/test_core.dir/core/runtime_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/runtime_test.cpp.o.d"
  "/root/repo/tests/core/service_thread_test.cpp" "tests/CMakeFiles/test_core.dir/core/service_thread_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/service_thread_test.cpp.o.d"
  "/root/repo/tests/core/sync_test.cpp" "tests/CMakeFiles/test_core.dir/core/sync_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/sync_test.cpp.o.d"
  "/root/repo/tests/core/trace_test.cpp" "tests/CMakeFiles/test_core.dir/core/trace_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/trace_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/core/CMakeFiles/gdrshmem_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/ib/CMakeFiles/gdrshmem_ib.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/cudart/CMakeFiles/gdrshmem_cudart.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/hw/CMakeFiles/gdrshmem_hw.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/gdrshmem_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
