file(REMOVE_RECURSE
  "CMakeFiles/test_ib.dir/ib/verbs_test.cpp.o"
  "CMakeFiles/test_ib.dir/ib/verbs_test.cpp.o.d"
  "test_ib"
  "test_ib.pdb"
  "test_ib[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
