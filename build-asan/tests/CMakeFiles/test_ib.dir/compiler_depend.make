# Empty compiler generated dependencies file for test_ib.
# This may be replaced when dependencies are built.
