# Empty compiler generated dependencies file for test_omb.
# This may be replaced when dependencies are built.
