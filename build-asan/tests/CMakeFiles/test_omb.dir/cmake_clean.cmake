file(REMOVE_RECURSE
  "CMakeFiles/test_omb.dir/omb/omb_test.cpp.o"
  "CMakeFiles/test_omb.dir/omb/omb_test.cpp.o.d"
  "test_omb"
  "test_omb.pdb"
  "test_omb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_omb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
