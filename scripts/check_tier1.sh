#!/usr/bin/env bash
# Tier-1 gate: the exact configure/build/ctest sequence CI runs, followed by
# the sanitizer sweep. Run this before merging anything that touches src/.
#
# Usage: scripts/check_tier1.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j "$@")

# Device-backend A/B: the device-initiated suites run under both engines.
# Differential tests pin and compare backends internally; the env-driven
# tests follow GDRSHMEM_DEVICE_BACKEND, so each pass exercises option
# parsing end-to-end plus the selected engine as the process-wide default.
for dev_backend in gpu-ib reverse; do
  echo "== device-backend A/B: GDRSHMEM_DEVICE_BACKEND=$dev_backend =="
  (cd build && GDRSHMEM_DEVICE_BACKEND=$dev_backend \
     ctest --output-on-failure -R 'DeviceApi|Stencil2DDevice')
done

# IB-transport A/B: the byte-exact differential suites run with the
# process-wide default transport flipped across the RC mesh, the DC pool,
# and the relaxed-ordering SRD spray, exercising GDRSHMEM_IB_TRANSPORT
# parsing end-to-end plus every protocol path over the selected QP
# discipline. (Timing-assertion suites stay on their pinned configs —
# transports move the clock, never the bytes.)
for ib_transport in rc dc srd; do
  echo "== ib-transport A/B: GDRSHMEM_IB_TRANSPORT=$ib_transport =="
  (cd build && GDRSHMEM_IB_TRANSPORT=$ib_transport \
     ctest --output-on-failure -R 'TransportDiff|Fuzz|OddSizes')
done

scripts/check_sanitize.sh

# Scale smoke: one 1K-PE barrier+message-rate round under a loose wall
# budget. Catches catastrophic engine scale-out regressions (queue or stack
# management falling over at high PE counts) without the cost of the full
# 64->16K sweep.
build/bench/bench_engine_overhead --scale-smoke

# Checkpoint-service smoke: the faulted open-loop config (proxy crash + P2P
# revocation mid-checkpoint) on both engine backends — digests must match
# bit-for-bit and no acknowledged checkpoint may be lost.
build/bench/bench_checkpoint --smoke

# Bench smoke + perf gate: run every bench quickly (the tables are computed
# once up front; the google-benchmark pass is skipped via a non-matching
# filter), collect each bench's BENCH_<tag>.json, and compare the
# deterministic virtual-time points against the committed baselines.
repo=$PWD
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
for bench in "$repo"/build/bench/bench_*; do
  [ -x "$bench" ] || continue
  name=$(basename "$bench")
  (cd "$smoke_dir" &&
   "$bench" --benchmark_filter='^$' >"$name.log" 2>&1) || {
    echo "bench smoke FAILED: $name"
    tail -20 "$smoke_dir/$name.log"
    exit 1
  }
done
scripts/check_perf.sh "$smoke_dir" bench/baselines

echo "tier-1 check passed"
