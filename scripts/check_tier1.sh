#!/usr/bin/env bash
# Tier-1 gate: the exact configure/build/ctest sequence CI runs, followed by
# the sanitizer sweep. Run this before merging anything that touches src/.
#
# Usage: scripts/check_tier1.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j "$@")

scripts/check_sanitize.sh

# Scale smoke: one 1K-PE barrier+message-rate round under a loose wall
# budget. Catches catastrophic engine scale-out regressions (queue or stack
# management falling over at high PE counts) without the cost of the full
# 64->16K sweep.
build/bench/bench_engine_overhead --scale-smoke

# Bench smoke + perf gate: run every bench quickly (the tables are computed
# once up front; the google-benchmark pass is skipped via a non-matching
# filter), collect each bench's BENCH_<tag>.json, and compare the
# deterministic virtual-time points against the committed baselines.
repo=$PWD
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
for bench in "$repo"/build/bench/bench_*; do
  [ -x "$bench" ] || continue
  name=$(basename "$bench")
  (cd "$smoke_dir" &&
   "$bench" --benchmark_filter='^$' >"$name.log" 2>&1) || {
    echo "bench smoke FAILED: $name"
    tail -20 "$smoke_dir/$name.log"
    exit 1
  }
done
scripts/check_perf.sh "$smoke_dir" bench/baselines

echo "tier-1 check passed"
