#!/usr/bin/env bash
# Tier-1 gate: the exact configure/build/ctest sequence CI runs, followed by
# the sanitizer sweep. Run this before merging anything that touches src/.
#
# Usage: scripts/check_tier1.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j "$@")

scripts/check_sanitize.sh

echo "tier-1 check passed"
