#!/usr/bin/env bash
# Build the sim/core tests under ASan+UBSan and run them under BOTH engine
# execution backends. This is the guard for fiber stack bugs (overflow into
# the guard page, use-after-unwind across swapcontext) and for the explicit
# event-heap/pool code — run it after touching src/sim/.
#
# Usage: scripts/check_sanitize.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset asan-ubsan
cmake --build build-asan -j --target test_sim test_core

for backend in fibers threads; do
  echo "== sanitized test_sim + test_core, GDRSHMEM_SIM_BACKEND=${backend} =="
  GDRSHMEM_SIM_BACKEND=${backend} ./build-asan/tests/test_sim "$@"
  GDRSHMEM_SIM_BACKEND=${backend} ./build-asan/tests/test_core "$@"
done

echo "sanitizer check passed for both backends"
