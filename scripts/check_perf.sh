#!/usr/bin/env bash
# Perf-regression gate: compare freshly produced BENCH_<tag>.json files
# against the committed baselines in bench/baselines/.
#
# Usage: scripts/check_perf.sh <fresh_dir> [baseline_dir]
#
#   fresh_dir     directory holding the BENCH_*.json files a bench run just
#                 produced (each bench accepts `--out <path>`)
#   baseline_dir  committed baselines (default: bench/baselines/)
#
# Only the deterministic virtual_us points are compared — wall-clock points
# are machine-dependent and ignored. A fresh point slower than its baseline
# by more than PERF_TOL (relative, default 0.10) fails the gate; getting
# faster only prints a note so intentional wins can be locked in by
# refreshing the baseline. Missing or malformed files fail too: a gate that
# silently skips is no gate.
set -euo pipefail

fresh_dir=${1:?usage: check_perf.sh <fresh_dir> [baseline_dir]}
base_dir=${2:-"$(dirname "$0")/../bench/baselines"}
: "${PERF_TOL:=0.10}"

python3 - "$fresh_dir" "$base_dir" "$PERF_TOL" <<'EOF'
import json
import pathlib
import sys

fresh_dir, base_dir = pathlib.Path(sys.argv[1]), pathlib.Path(sys.argv[2])
tol = float(sys.argv[3])

def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != 1 or "bench" not in doc:
        raise ValueError(f"{path}: not a schema-1 bench file")
    for key in ("points", "wall_points", "metrics"):
        if key not in doc:
            raise ValueError(f"{path}: missing '{key}'")
    names = set()
    for p in doc["points"]:
        if "name" not in p or "virtual_us" not in p:
            raise ValueError(f"{path}: malformed point {p}")
        if p["name"] in names:
            raise ValueError(f"{path}: duplicate point name '{p['name']}' — "
                             "comparison would be ambiguous")
        names.add(p["name"])
    return doc

baselines = sorted(base_dir.glob("BENCH_*.json"))
if not baselines:
    sys.exit(f"check_perf: no baselines in {base_dir}")

regressions, compared = [], 0
for base_path in baselines:
    base = load(base_path)
    fresh_path = fresh_dir / base_path.name
    if not fresh_path.exists():
        sys.exit(f"check_perf: {fresh_path} missing (bench not run?)")
    fresh = load(fresh_path)
    fresh_pts = {p["name"]: p["virtual_us"] for p in fresh["points"]}
    for p in base["points"]:
        name, want = p["name"], p["virtual_us"]
        if name not in fresh_pts:
            sys.exit(f"check_perf: {fresh_path.name}: point '{name}' vanished")
        got = fresh_pts[name]
        compared += 1
        if want > 0 and got > want * (1 + tol):
            regressions.append((base_path.name, name, want, got))
        elif want > 0 and got < want * (1 - tol):
            print(f"  note: {base_path.name}:{name} improved "
                  f"{want:.3f} -> {got:.3f} us (refresh baseline to lock in)")

if regressions:
    print(f"check_perf: FAIL — {len(regressions)} regression(s) "
          f"(tolerance {tol:.0%}):")
    for fname, name, want, got in regressions:
        print(f"  {fname}:{name}: {want:.3f} us -> {got:.3f} us "
              f"(+{(got / want - 1):.1%})")
    sys.exit(1)
print(f"check_perf: OK — {compared} virtual-time points within "
      f"{tol:.0%} of baseline across {len(baselines)} benches")
EOF
