#!/usr/bin/env bash
# Perf-regression gate: compare freshly produced BENCH_<tag>.json files
# against the committed baselines in bench/baselines/.
#
# Usage: scripts/check_perf.sh <fresh_dir> [baseline_dir]
#
#   fresh_dir     directory holding the BENCH_*.json files a bench run just
#                 produced (each bench accepts `--out <path>`)
#   baseline_dir  committed baselines (default: bench/baselines/)
#
# Three comparisons per bench file:
#
#   * points[].virtual_us    — deterministic simulated time. Slower than the
#                              baseline by more than PERF_TOL (relative,
#                              default 0.10) fails; getting faster prints a
#                              note so wins can be locked in by refreshing
#                              the baseline.
#   * wall_points[].events   — the event count per wall point is just as
#                              deterministic as virtual time, so it must
#                              match the baseline EXACTLY. A drift means the
#                              workload (not the machine) changed and the
#                              baseline is stale.
#   * wall_points[].events_per_sec — wall throughput is machine-dependent, so
#                              it is only held to a loose floor: fresh must be
#                              >= baseline * PERF_WALL_FRAC (default 0.40).
#                              This catches order-of-magnitude scale-out
#                              collapses (the 64->16K-PE sweep points) without
#                              flaking on box-to-box variance.
#
# Missing or malformed files fail too: a gate that silently skips is no gate.
set -euo pipefail

fresh_dir=${1:?usage: check_perf.sh <fresh_dir> [baseline_dir]}
base_dir=${2:-"$(dirname "$0")/../bench/baselines"}
: "${PERF_TOL:=0.10}"
: "${PERF_WALL_FRAC:=0.40}"

python3 - "$fresh_dir" "$base_dir" "$PERF_TOL" "$PERF_WALL_FRAC" <<'EOF'
import json
import pathlib
import sys

fresh_dir, base_dir = pathlib.Path(sys.argv[1]), pathlib.Path(sys.argv[2])
tol = float(sys.argv[3])
wall_frac = float(sys.argv[4])

def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != 1 or "bench" not in doc:
        raise ValueError(f"{path}: not a schema-1 bench file")
    for key in ("points", "wall_points", "metrics"):
        if key not in doc:
            raise ValueError(f"{path}: missing '{key}'")
    names = set()
    for p in doc["points"]:
        if "name" not in p or "virtual_us" not in p:
            raise ValueError(f"{path}: malformed point {p}")
        if p["name"] in names:
            raise ValueError(f"{path}: duplicate point name '{p['name']}' — "
                             "comparison would be ambiguous")
        names.add(p["name"])
    wnames = set()
    for p in doc["wall_points"]:
        if "name" not in p or "events" not in p or "events_per_sec" not in p:
            raise ValueError(f"{path}: malformed wall point {p}")
        if p["name"] in wnames:
            raise ValueError(f"{path}: duplicate wall point '{p['name']}'")
        wnames.add(p["name"])
    return doc

baselines = sorted(base_dir.glob("BENCH_*.json"))
if not baselines:
    sys.exit(f"check_perf: no baselines in {base_dir}")

regressions, compared = [], 0
wall_failures, wall_compared = [], 0
for base_path in baselines:
    base = load(base_path)
    fresh_path = fresh_dir / base_path.name
    if not fresh_path.exists():
        sys.exit(f"check_perf: {fresh_path} missing (bench not run?)")
    fresh = load(fresh_path)
    fresh_pts = {p["name"]: p["virtual_us"] for p in fresh["points"]}
    for p in base["points"]:
        name, want = p["name"], p["virtual_us"]
        if name not in fresh_pts:
            sys.exit(f"check_perf: {fresh_path.name}: point '{name}' vanished")
        got = fresh_pts[name]
        compared += 1
        if want > 0 and got > want * (1 + tol):
            regressions.append((base_path.name, name, want, got))
        elif want > 0 and got < want * (1 - tol):
            print(f"  note: {base_path.name}:{name} improved "
                  f"{want:.3f} -> {got:.3f} us (refresh baseline to lock in)")
    fresh_wall = {p["name"]: p for p in fresh["wall_points"]}
    for p in base["wall_points"]:
        name = p["name"]
        if name not in fresh_wall:
            sys.exit(f"check_perf: {fresh_path.name}: wall point '{name}' "
                     "vanished")
        got = fresh_wall[name]
        wall_compared += 1
        # The event count is deterministic: any drift is a workload change,
        # not machine noise, and means the baseline needs a refresh.
        if got["events"] != p["events"]:
            wall_failures.append(
                f"{base_path.name}:{name}: events {p['events']} -> "
                f"{got['events']} (deterministic count changed — stale "
                "baseline or broken determinism)")
        # Throughput only has to clear a loose floor.
        floor = p["events_per_sec"] * wall_frac
        if p["events_per_sec"] > 0 and got["events_per_sec"] < floor:
            wall_failures.append(
                f"{base_path.name}:{name}: events/sec "
                f"{p['events_per_sec']:.0f} -> {got['events_per_sec']:.0f} "
                f"(below floor {floor:.0f} = baseline x {wall_frac})")

if regressions or wall_failures:
    if regressions:
        print(f"check_perf: FAIL — {len(regressions)} virtual-time "
              f"regression(s) (tolerance {tol:.0%}):")
        for fname, name, want, got in regressions:
            print(f"  {fname}:{name}: {want:.3f} us -> {got:.3f} us "
                  f"(+{(got / want - 1):.1%})")
    if wall_failures:
        print(f"check_perf: FAIL — {len(wall_failures)} wall-point "
              "failure(s):")
        for msg in wall_failures:
            print(f"  {msg}")
    sys.exit(1)
print(f"check_perf: OK — {compared} virtual-time points within {tol:.0%}, "
      f"{wall_compared} wall points (events exact, throughput floor "
      f"{wall_frac}) across {len(baselines)} benches")
EOF
