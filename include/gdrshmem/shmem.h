// gdrshmem public host API: C-style OpenSHMEM 1.4 surface, bound to the
// calling PE via a per-process context — so paper-style application code
// ports almost verbatim:
//
//   gdrshmem::core::Runtime rt(cluster, opts);
//   rt.run([](gdrshmem::core::Ctx& ctx) {
//     capi::Bind bind(ctx);                      // once per PE body
//     double* x = (double*)shmem_malloc(n, Domain::kGpu);
//     shmem_putmem(x, src, n, (shmem_my_pe() + 1) % shmem_n_pes());
//     shmem_quiet();
//     shmem_barrier_all();
//   });
//
// The primary surface uses the OpenSHMEM 1.4 names (shmem_malloc,
// shmem_atomic_fetch_add, typed shmem_put/shmem_get overloads). The pre-1.4
// classic names (shmalloc, shmem_longlong_fadd, ...) remain as deprecated
// aliases; migrate as follows and define GDRSHMEM_NO_DEPRECATE to silence
// the warnings meanwhile:
//
//   shmalloc(n, dom)          -> shmem_malloc(n, dom)
//   shfree(p)                 -> shmem_free(p)
//   shmem_double_put/get      -> shmem_put / shmem_get (typed overloads)
//   shmem_float_put/get       -> shmem_put / shmem_get
//   shmem_longlong_put/get    -> shmem_put / shmem_get
//   shmem_longlong_fadd       -> shmem_atomic_fetch_add
//   shmem_longlong_add        -> shmem_atomic_add
//   shmem_longlong_finc       -> shmem_atomic_fetch_inc
//   shmem_longlong_cswap      -> shmem_atomic_compare_swap
//   shmem_longlong_swap       -> shmem_atomic_swap
//   shmem_int_fadd            -> shmem_atomic_fetch_add (int overload)
//   shmem_longlong_max_to_all -> shmem_long_max_to_all
//
// Every function forwards to the bound Ctx; calling without a bound context
// throws ShmemError. The device-initiated (in-kernel) surface lives in
// <gdrshmem/shmem_device.h>.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/types.hpp"
#include "gdrshmem/version.h"

namespace gdrshmem::core {
class Ctx;
class Team;
}
namespace gdrshmem::sim {
class Process;
}

namespace gdrshmem::capi {

/// RAII binder: installs `ctx` as the calling simulated process's current PE
/// context (keyed on the Process, so it works under both the fiber and the
/// thread execution backend).
class Bind {
 public:
  explicit Bind(core::Ctx& ctx);
  ~Bind();
  Bind(const Bind&) = delete;
  Bind& operator=(const Bind&) = delete;

 private:
  sim::Process* proc_;
};

/// The bound context (throws if none).
core::Ctx& current();

// ---- setup / query --------------------------------------------------------
int shmem_my_pe();
int shmem_n_pes();

/// OpenSHMEM 1.5 runtime queries: the specification version the primary
/// spellings follow and the vendor name string (null-terminated, at most
/// SHMEM_MAX_NAME_LEN bytes including the terminator).
inline constexpr int SHMEM_MAX_NAME_LEN = 64;
void shmem_info_get_version(int* major, int* minor);
void shmem_info_get_name(char* name);

/// gdrshmem extensions: the active IB queue-pair transport ("rc" | "ud" |
/// "dc") and the rail count large messages stripe across — so apps and
/// benches report the transport in effect instead of re-reading env vars.
/// Both require a bound context (the transport is a runtime property).
const char* shmemx_transport_name();
int shmemx_rail_count();

// ---- symmetric memory (OpenSHMEM 1.4, with the paper's Domain extension) --
/// shmem_malloc(size): collective symmetric allocation on the host heap.
/// The two-argument overload is this runtime's GPU extension — the paper's
/// Domain-aware shmalloc under the modern name.
void* shmem_malloc(std::size_t size);
void* shmem_malloc(std::size_t size, core::Domain domain);
/// Zero-initialized symmetric allocation (every PE's copy is zeroed).
void* shmem_calloc(std::size_t count, std::size_t size,
                   core::Domain domain = core::Domain::kHost);
void shmem_free(void* p);
void* shmem_ptr(const void* sym, int pe);

/// Classic pre-1.2 names, kept as deprecated aliases.
GDRSHMEM_DEPRECATED("use shmem_malloc(size, domain)")
void* shmalloc(std::size_t bytes, core::Domain domain = core::Domain::kHost);
GDRSHMEM_DEPRECATED("use shmem_free")
void shfree(void* p);

// ---- RMA --------------------------------------------------------------------
void shmem_putmem(void* dst, const void* src, std::size_t n, int pe);
void shmem_getmem(void* dst, const void* src, std::size_t n, int pe);
void shmem_putmem_nbi(void* dst, const void* src, std::size_t n, int pe);
void shmem_getmem_nbi(void* dst, const void* src, std::size_t n, int pe);

/// Typed RMA, the C++ spelling of the 1.4 typed interface (shmem_double_put
/// et al. become overloads of one name).
void shmem_put(double* dst, const double* src, std::size_t nelems, int pe);
void shmem_put(float* dst, const float* src, std::size_t nelems, int pe);
void shmem_put(long long* dst, const long long* src, std::size_t nelems, int pe);
void shmem_put(int* dst, const int* src, std::size_t nelems, int pe);
void shmem_get(double* dst, const double* src, std::size_t nelems, int pe);
void shmem_get(float* dst, const float* src, std::size_t nelems, int pe);
void shmem_get(long long* dst, const long long* src, std::size_t nelems, int pe);
void shmem_get(int* dst, const int* src, std::size_t nelems, int pe);
void shmem_put_nbi(double* dst, const double* src, std::size_t nelems, int pe);
void shmem_put_nbi(long long* dst, const long long* src, std::size_t nelems, int pe);
void shmem_get_nbi(double* dst, const double* src, std::size_t nelems, int pe);
void shmem_get_nbi(long long* dst, const long long* src, std::size_t nelems, int pe);

/// Classic typed names, kept as deprecated aliases.
GDRSHMEM_DEPRECATED("use the shmem_put typed overload")
void shmem_double_put(double* dst, const double* src, std::size_t n, int pe);
GDRSHMEM_DEPRECATED("use the shmem_get typed overload")
void shmem_double_get(double* dst, const double* src, std::size_t n, int pe);
GDRSHMEM_DEPRECATED("use the shmem_put typed overload")
void shmem_float_put(float* dst, const float* src, std::size_t n, int pe);
GDRSHMEM_DEPRECATED("use the shmem_get typed overload")
void shmem_float_get(float* dst, const float* src, std::size_t n, int pe);
GDRSHMEM_DEPRECATED("use the shmem_put typed overload")
void shmem_longlong_put(long long* dst, const long long* src, std::size_t n, int pe);
GDRSHMEM_DEPRECATED("use the shmem_get typed overload")
void shmem_longlong_get(long long* dst, const long long* src, std::size_t n, int pe);

// ---- ordering ----------------------------------------------------------------
void shmem_quiet();
void shmem_fence();

// ---- synchronization ------------------------------------------------------------
void shmem_barrier_all();
void shmem_longlong_wait_until(const long long* sym, int cmp_op, long long value);
// SHMEM_CMP_* constants.
inline constexpr int SHMEM_CMP_EQ = 0;
inline constexpr int SHMEM_CMP_NE = 1;
inline constexpr int SHMEM_CMP_GT = 2;
inline constexpr int SHMEM_CMP_GE = 3;
inline constexpr int SHMEM_CMP_LT = 4;
inline constexpr int SHMEM_CMP_LE = 5;

// ---- atomics (OpenSHMEM 1.4 shmem_atomic_* names) --------------------------
long long shmem_atomic_fetch_add(long long* sym, long long value, int pe);
void shmem_atomic_add(long long* sym, long long value, int pe);
long long shmem_atomic_fetch_inc(long long* sym, int pe);
void shmem_atomic_inc(long long* sym, int pe);
long long shmem_atomic_swap(long long* sym, long long value, int pe);
long long shmem_atomic_compare_swap(long long* sym, long long cond,
                                    long long value, int pe);
long long shmem_atomic_fetch(const long long* sym, int pe);
/// 32-bit overloads (masked CAS technique underneath, Section III-D).
int shmem_atomic_fetch_add(int* sym, int value, int pe);
int shmem_atomic_compare_swap(int* sym, int cond, int value, int pe);

/// Classic pre-1.4 atomic names, kept as deprecated aliases.
GDRSHMEM_DEPRECATED("use shmem_atomic_fetch_add")
long long shmem_longlong_fadd(long long* sym, long long value, int pe);
GDRSHMEM_DEPRECATED("use shmem_atomic_add")
void shmem_longlong_add(long long* sym, long long value, int pe);
GDRSHMEM_DEPRECATED("use shmem_atomic_fetch_inc")
long long shmem_longlong_finc(long long* sym, int pe);
GDRSHMEM_DEPRECATED("use shmem_atomic_compare_swap")
long long shmem_longlong_cswap(long long* sym, long long cond, long long value, int pe);
GDRSHMEM_DEPRECATED("use shmem_atomic_swap")
long long shmem_longlong_swap(long long* sym, long long value, int pe);
GDRSHMEM_DEPRECATED("use the shmem_atomic_fetch_add int overload")
int shmem_int_fadd(int* sym, int value, int pe);

// ---- teams (OpenSHMEM 1.5 shapes) ------------------------------------------
/// A team handle is a pointer to the per-PE core::Team object; PEs outside a
/// split's new team hold SHMEM_TEAM_INVALID.
using shmem_team_t = core::Team*;
inline constexpr shmem_team_t SHMEM_TEAM_INVALID = nullptr;

shmem_team_t shmem_team_world();
/// Collective over `parent`'s members. On success returns 0 with `*new_team`
/// set (SHMEM_TEAM_INVALID on non-members); returns nonzero when `parent` is
/// invalid. Bad triplets / slot exhaustion throw (identically on every
/// member).
int shmem_team_split_strided(shmem_team_t parent, int start, int stride,
                             int size, shmem_team_t* new_team);
/// -1 for SHMEM_TEAM_INVALID, per the spec.
int shmem_team_my_pe(shmem_team_t team);
int shmem_team_n_pes(shmem_team_t team);
/// `src_pe` of `src_team` in `dst_team`'s numbering; -1 when not a member
/// (or either handle is invalid).
int shmem_team_translate_pe(shmem_team_t src_team, int src_pe,
                            shmem_team_t dst_team);
void shmem_team_destroy(shmem_team_t team);
void shmem_team_sync(shmem_team_t team);

// ---- collectives --------------------------------------------------------------------
void shmem_broadcastmem(void* dst, const void* src, std::size_t n, int root);
void shmem_broadcastmem(shmem_team_t team, void* dst, const void* src,
                        std::size_t n, int root);
void shmem_fcollectmem(void* dst, const void* src, std::size_t nbytes);
void shmem_fcollectmem(shmem_team_t team, void* dst, const void* src,
                       std::size_t nbytes);
void shmem_alltoallmem(void* dst, const void* src, std::size_t nbytes);
void shmem_alltoallmem(shmem_team_t team, void* dst, const void* src,
                       std::size_t nbytes);

/// OpenSHMEM 1.4 typed active-set reductions over all PEs (no pWrk/pSync:
/// the runtime's internal sync pool replaces them).
void shmem_int_sum_to_all(int* dst, const int* src, std::size_t nreduce);
void shmem_int_min_to_all(int* dst, const int* src, std::size_t nreduce);
void shmem_int_max_to_all(int* dst, const int* src, std::size_t nreduce);
void shmem_long_sum_to_all(long long* dst, const long long* src, std::size_t nreduce);
void shmem_long_min_to_all(long long* dst, const long long* src, std::size_t nreduce);
void shmem_long_max_to_all(long long* dst, const long long* src, std::size_t nreduce);
void shmem_float_sum_to_all(float* dst, const float* src, std::size_t nreduce);
void shmem_float_min_to_all(float* dst, const float* src, std::size_t nreduce);
void shmem_float_max_to_all(float* dst, const float* src, std::size_t nreduce);
void shmem_double_sum_to_all(double* dst, const double* src, std::size_t nreduce);
void shmem_double_min_to_all(double* dst, const double* src, std::size_t nreduce);
void shmem_double_max_to_all(double* dst, const double* src, std::size_t nreduce);
/// Classic alias kept as a deprecated spelling (long long variant).
GDRSHMEM_DEPRECATED("use shmem_long_max_to_all")
void shmem_longlong_max_to_all(long long* dst, const long long* src, std::size_t n);

/// OpenSHMEM 1.5-style team reductions (shmem_int_sum_reduce, ...).
void shmem_int_sum_reduce(shmem_team_t team, int* dst, const int* src, std::size_t n);
void shmem_int_min_reduce(shmem_team_t team, int* dst, const int* src, std::size_t n);
void shmem_int_max_reduce(shmem_team_t team, int* dst, const int* src, std::size_t n);
void shmem_long_sum_reduce(shmem_team_t team, long long* dst, const long long* src, std::size_t n);
void shmem_long_min_reduce(shmem_team_t team, long long* dst, const long long* src, std::size_t n);
void shmem_long_max_reduce(shmem_team_t team, long long* dst, const long long* src, std::size_t n);
void shmem_float_sum_reduce(shmem_team_t team, float* dst, const float* src, std::size_t n);
void shmem_float_min_reduce(shmem_team_t team, float* dst, const float* src, std::size_t n);
void shmem_float_max_reduce(shmem_team_t team, float* dst, const float* src, std::size_t n);
void shmem_double_sum_reduce(shmem_team_t team, double* dst, const double* src, std::size_t n);
void shmem_double_min_reduce(shmem_team_t team, double* dst, const double* src, std::size_t n);
void shmem_double_max_reduce(shmem_team_t team, double* dst, const double* src, std::size_t n);

}  // namespace gdrshmem::capi
