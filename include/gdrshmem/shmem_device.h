// gdrshmem device-initiated API: the shmemx_* surface a resident kernel
// programs against (NVSHMEM-style, hence the x extension prefix). All calls
// take an explicit shmemx_device_ctx_t handle — kernels are re-entrant and
// many can be resident per PE, so there is no bound-context ambient state
// like the host Bind.
//
//   ctx.launch_kernel_device(per_cell_ns, core::DeviceScope::kThread,
//                            [&](core::DeviceCtx& d) {
//     shmemx_device_ctx_t dctx = &d;
//     for (int it = 0; it < iters; ++it) {
//       shmemx_compute(dctx, cells);
//       shmemx_putmem_signal(dctx, rbuf, sbuf, n, sig, it + 1, peer);
//       shmemx_signal_wait_until(dctx, sig, SHMEMX_CMP_GE, it + 1);
//     }
//   });
//
// The backend behind the handle (GPU-IB doorbell vs reverse offload through
// the proxy) is selected per Runtime via GDRSHMEM_DEVICE_BACKEND; application
// results are bit-identical across backends per seed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "core/device_api.hpp"
#include "gdrshmem/version.h"

namespace gdrshmem::capi {

/// Handle to the per-kernel device context (valid for the kernel's lifetime).
using shmemx_device_ctx_t = core::DeviceCtx*;

/// Issue scopes: which threads cooperate on building one operation's WQE.
inline constexpr core::DeviceScope SHMEMX_SCOPE_THREAD = core::DeviceScope::kThread;
inline constexpr core::DeviceScope SHMEMX_SCOPE_WARP = core::DeviceScope::kWarp;
inline constexpr core::DeviceScope SHMEMX_SCOPE_BLOCK = core::DeviceScope::kBlock;

/// Comparison constants for the wait/signal-wait calls (match SHMEM_CMP_*).
inline constexpr core::Cmp SHMEMX_CMP_EQ = core::Cmp::kEq;
inline constexpr core::Cmp SHMEMX_CMP_NE = core::Cmp::kNe;
inline constexpr core::Cmp SHMEMX_CMP_GT = core::Cmp::kGt;
inline constexpr core::Cmp SHMEMX_CMP_GE = core::Cmp::kGe;
inline constexpr core::Cmp SHMEMX_CMP_LT = core::Cmp::kLt;
inline constexpr core::Cmp SHMEMX_CMP_LE = core::Cmp::kLe;

/// Launch a resident kernel on `ctx`'s GPU whose body may issue device
/// OpenSHMEM calls without terminating (the tentpole entry point). Charges
/// the launch cost once; `body` then runs in kernel time, its compute charged
/// at `per_cell_ns` per cell via shmemx_compute.
void shmemx_launch_kernel(core::Ctx& ctx, double per_cell_ns,
                          core::DeviceScope scope,
                          const std::function<void(shmemx_device_ctx_t)>& body);

// ---- identity --------------------------------------------------------------
int shmemx_my_pe(shmemx_device_ctx_t dctx);
int shmemx_n_pes(shmemx_device_ctx_t dctx);

// ---- RMA -------------------------------------------------------------------
void shmemx_putmem(shmemx_device_ctx_t dctx, void* dst_sym, const void* src,
                   std::size_t n, int pe);
void shmemx_getmem(shmemx_device_ctx_t dctx, void* dst, const void* src_sym,
                   std::size_t n, int pe);
void shmemx_putmem_nbi(shmemx_device_ctx_t dctx, void* dst_sym,
                       const void* src, std::size_t n, int pe);
void shmemx_getmem_nbi(shmemx_device_ctx_t dctx, void* dst,
                       const void* src_sym, std::size_t n, int pe);

/// Put-with-signal: `signal` lands at `sig_sym` only after the payload is
/// remotely complete.
void shmemx_putmem_signal(shmemx_device_ctx_t dctx, void* dst_sym,
                          const void* src, std::size_t n,
                          std::uint64_t* sig_sym, std::uint64_t signal,
                          int pe);

// ---- ordering / synchronization -------------------------------------------
void shmemx_quiet(shmemx_device_ctx_t dctx);
void shmemx_fence(shmemx_device_ctx_t dctx);
void shmemx_signal_wait_until(shmemx_device_ctx_t dctx,
                              const std::uint64_t* sig_sym, core::Cmp cmp,
                              std::uint64_t value);
void shmemx_longlong_wait_until(shmemx_device_ctx_t dctx,
                                const long long* sym, core::Cmp cmp,
                                long long value);

// ---- atomics ---------------------------------------------------------------
long long shmemx_atomic_fetch_add(shmemx_device_ctx_t dctx, long long* sym,
                                  long long value, int pe);
void shmemx_atomic_add(shmemx_device_ctx_t dctx, long long* sym,
                       long long value, int pe);
long long shmemx_atomic_compare_swap(shmemx_device_ctx_t dctx, long long* sym,
                                     long long cond, long long value, int pe);

// ---- shmem_ptr load/store ---------------------------------------------------
/// Direct device pointer to `pe`'s copy of `sym`, or nullptr when the GPU
/// cannot load/store it (different node, or GPU heap with P2P revoked).
void* shmemx_ptr(shmemx_device_ctx_t dctx, const void* sym, int pe);

// ---- device compute ---------------------------------------------------------
/// Charge `cells` of kernel compute at the launch's per-cell rate.
void shmemx_compute(shmemx_device_ctx_t dctx, std::size_t cells);

}  // namespace gdrshmem::capi
