// Version macros for the installed gdrshmem headers.
//
// GDRSHMEM_API_VERSION bumps whenever the installed surface changes shape
// (it is NOT the package version). The SHMEM_{MAJOR,MINOR}_VERSION pair
// reports the OpenSHMEM specification level the primary spellings follow,
// as the spec requires of shmem.h.
#pragma once

#define GDRSHMEM_API_VERSION_MAJOR 2
#define GDRSHMEM_API_VERSION_MINOR 0

#define SHMEM_MAJOR_VERSION 1
#define SHMEM_MINOR_VERSION 4
#define SHMEM_VENDOR_STRING "gdrshmem (simulated, Hamidouche et al. CLUSTER'15)"

// Pre-1.4 classic spellings (shmalloc, shmem_longlong_fadd, ...) are kept as
// deprecated aliases. Define GDRSHMEM_NO_DEPRECATE before including any
// gdrshmem header to silence the warnings during migration.
#if defined(GDRSHMEM_NO_DEPRECATE)
#define GDRSHMEM_DEPRECATED(msg)
#else
#define GDRSHMEM_DEPRECATED(msg) [[deprecated(msg)]]
#endif
