// Convenience alias for the device-initiated surface: applications include
// <gdrshmem_device.h> (mirroring NVSHMEM's nvshmem.h/nvshmemx.h split) and
// get the shmemx_* API plus the host surface it builds on.
#pragma once

#include "gdrshmem/shmem.h"
#include "gdrshmem/shmem_device.h"
